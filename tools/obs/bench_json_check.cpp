// bench_json_check — validate BENCH JSON documents against the
// "scale-bench-v1" schema (obs::validate_bench_json, the same routine the
// unit tests use). tier1.sh runs one bench with --json and pipes the result
// through this tool, so a schema regression fails the build gate, not a
// downstream plotting script.
//
// A second mode guards the perf trajectory: --compare-allocs diffs the
// "allocations" section of a fresh run against the committed baseline
// (BENCH_core.json) and fails when any phase allocates MORE than it used
// to. Allocation counts — unlike wall times — are deterministic, so the
// gate is exact and runs on any machine.
//
// Two more modes guard shard-readiness (DESIGN.md §6 L6–L8): --lint
// validates "scale-lint-v1" documents from `scale_lint --json`, and
// --compare-lint diffs a fresh lint report against the committed
// LINT_baseline.json — any NEW finding or NEW waiver fails, so the lint
// gate catches additions even when the exit code alone would not (e.g. a
// fresh `// lint:` waiver silently widening the audit surface).
//
// usage: bench_json_check <file.json>...
//        bench_json_check --compare-allocs <baseline.json> <current.json>
//        bench_json_check --lint <file.json>...
//        bench_json_check --compare-lint <baseline.json> <current.json>
// Exit: 0 all valid / no regression, 1 any invalid / regression, 2 usage/IO.
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>

#include "obs/json.h"
#include "obs/report.h"

namespace {

/// Load + parse + schema-validate one document; nullopt (with a message on
/// stderr) when anything is wrong. `*io_error` distinguishes exit code 2.
std::optional<scale::obs::Json> load_bench(const char* path, bool* io_error) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "%s: cannot open\n", path);
    *io_error = true;
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string error;
  auto doc = scale::obs::Json::parse(buf.str(), &error);
  if (!doc.has_value()) {
    std::fprintf(stderr, "%s: parse error: %s\n", path, error.c_str());
    return std::nullopt;
  }
  const auto problems = scale::obs::validate_bench_json(*doc);
  for (const auto& p : problems)
    std::fprintf(stderr, "%s: %s\n", path, p.c_str());
  if (!problems.empty()) return std::nullopt;
  return doc;
}

/// Extract {row label -> value of the "allocs" column} from the
/// "allocations" section. Empty map when the section is absent.
std::map<std::string, double> alloc_counts(const scale::obs::Json& doc) {
  std::map<std::string, double> out;
  const auto* sections = doc.find("sections");
  if (sections == nullptr) return out;
  for (const auto& sec : sections->elements()) {
    const auto* name = sec.find("name");
    if (name == nullptr || name->as_string() != "allocations") continue;
    std::size_t allocs_col = 0;
    const auto& columns = sec.find("columns")->elements();
    for (std::size_t c = 0; c < columns.size(); ++c)
      if (columns[c].as_string() == "allocs") allocs_col = c;
    for (const auto& row : sec.find("rows")->elements()) {
      const auto& values = row.find("values")->elements();
      if (allocs_col < values.size())
        out[row.find("label")->as_string()] = values[allocs_col].as_double();
    }
  }
  return out;
}

/// The perf gate: every phase present in the baseline must still exist and
/// must not allocate more than it did at baseline time. New phases (no
/// baseline yet) pass; re-baseline via scripts/bench_baseline.sh.
int compare_allocs(const char* baseline_path, const char* current_path) {
  bool io_error = false;
  const auto baseline = load_bench(baseline_path, &io_error);
  const auto current = load_bench(current_path, &io_error);
  if (io_error) return 2;
  if (!baseline.has_value() || !current.has_value()) return 1;

  const auto want = alloc_counts(*baseline);
  const auto got = alloc_counts(*current);
  if (want.empty()) {
    std::fprintf(stderr, "%s: no allocations section to compare\n",
                 baseline_path);
    return 1;
  }
  int code = 0;
  for (const auto& [label, base_allocs] : want) {
    const auto it = got.find(label);
    if (it == got.end()) {
      std::fprintf(stderr, "alloc-compare: phase '%s' missing from %s\n",
                   label.c_str(), current_path);
      code = 1;
      continue;
    }
    if (it->second > base_allocs) {
      std::fprintf(stderr,
                   "alloc-compare: '%s' regressed: %.0f allocs "
                   "(baseline %.0f)\n",
                   label.c_str(), it->second, base_allocs);
      code = 1;
    } else {
      std::printf("alloc-compare: %s: %.0f <= %.0f OK\n", label.c_str(),
                  it->second, base_allocs);
    }
  }
  return code;
}

/// One row of the "fig10_1m_capacity" section, keyed by row label.
struct CapacityRow {
  double ues = 0.0;
  double ops_per_s = 0.0;
  double peak_rss = 0.0;
};

/// Extract the fig10_1m_capacity rows. Empty when the section is absent.
std::map<std::string, CapacityRow> capacity_rows(
    const scale::obs::Json& doc) {
  std::map<std::string, CapacityRow> out;
  const auto* sections = doc.find("sections");
  if (sections == nullptr) return out;
  for (const auto& sec : sections->elements()) {
    const auto* name = sec.find("name");
    if (name == nullptr || name->as_string() != "fig10_1m_capacity") continue;
    std::size_t ues_col = 0, rate_col = 0, rss_col = 0;
    const auto& columns = sec.find("columns")->elements();
    for (std::size_t c = 0; c < columns.size(); ++c) {
      const std::string col = columns[c].as_string();
      if (col == "ues") ues_col = c;
      if (col == "ops_per_s") rate_col = c;
      if (col == "peak_rss_bytes") rss_col = c;
    }
    for (const auto& row : sec.find("rows")->elements()) {
      const auto& values = row.find("values")->elements();
      CapacityRow r;
      if (ues_col < values.size()) r.ues = values[ues_col].as_double();
      if (rate_col < values.size()) r.ops_per_s = values[rate_col].as_double();
      if (rss_col < values.size()) r.peak_rss = values[rss_col].as_double();
      out[row.find("label")->as_string()] = r;
    }
  }
  return out;
}

/// The MillionUE gate: every capacity phase must still run at full scale
/// (ues must not shrink), must not grow peak RSS past 1.15× the committed
/// baseline, and must keep at least 40% of the baseline's events/s. The RSS
/// bound is near-deterministic (page-granular); the throughput floor is
/// deliberately generous because wall clocks vary across machines —
/// re-baseline on faster/slower hardware via scripts/bench_baseline.sh.
int compare_capacity(const char* baseline_path, const char* current_path) {
  constexpr double kRssSlack = 1.15;
  constexpr double kThroughputFloor = 0.40;
  bool io_error = false;
  const auto baseline = load_bench(baseline_path, &io_error);
  const auto current = load_bench(current_path, &io_error);
  if (io_error) return 2;
  if (!baseline.has_value() || !current.has_value()) return 1;

  const auto want = capacity_rows(*baseline);
  const auto got = capacity_rows(*current);
  if (want.empty()) {
    std::fprintf(stderr, "%s: no fig10_1m_capacity section to compare\n",
                 baseline_path);
    return 1;
  }
  int code = 0;
  for (const auto& [label, base] : want) {
    const auto it = got.find(label);
    if (it == got.end()) {
      std::fprintf(stderr, "capacity-compare: row '%s' missing from %s\n",
                   label.c_str(), current_path);
      code = 1;
      continue;
    }
    const CapacityRow& cur = it->second;
    int row_code = 0;
    if (cur.ues < base.ues) {
      std::fprintf(stderr,
                   "capacity-compare: '%s' population shrank: %.0f UEs "
                   "(baseline %.0f)\n",
                   label.c_str(), cur.ues, base.ues);
      row_code = 1;
    }
    if (cur.peak_rss > base.peak_rss * kRssSlack) {
      std::fprintf(stderr,
                   "capacity-compare: '%s' peak RSS regressed: %.0f bytes "
                   "(baseline %.0f, slack %.2fx)\n",
                   label.c_str(), cur.peak_rss, base.peak_rss, kRssSlack);
      row_code = 1;
    }
    if (cur.ops_per_s < base.ops_per_s * kThroughputFloor) {
      std::fprintf(stderr,
                   "capacity-compare: '%s' throughput collapsed: %.0f "
                   "ops/s (baseline %.0f, floor %.2fx)\n",
                   label.c_str(), cur.ops_per_s, base.ops_per_s,
                   kThroughputFloor);
      row_code = 1;
    }
    if (row_code == 0)
      std::printf("capacity-compare: %s: rss %.0f <= %.0f, %.0f ops/s OK\n",
                  label.c_str(), cur.peak_rss, base.peak_rss * kRssSlack,
                  cur.ops_per_s);
    code |= row_code;
  }
  return code;
}

/// Load + parse + validate one scale-lint-v1 document.
std::optional<scale::obs::Json> load_lint(const char* path, bool* io_error) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "%s: cannot open\n", path);
    *io_error = true;
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string error;
  auto doc = scale::obs::Json::parse(buf.str(), &error);
  if (!doc.has_value()) {
    std::fprintf(stderr, "%s: parse error: %s\n", path, error.c_str());
    return std::nullopt;
  }
  const auto problems = scale::obs::validate_lint_json(*doc);
  for (const auto& p : problems)
    std::fprintf(stderr, "%s: %s\n", path, p.c_str());
  if (!problems.empty()) return std::nullopt;
  return doc;
}

/// Multiset of entries in a lint-report array, keyed stably *without* line
/// numbers, so unrelated edits shifting a file do not churn the baseline.
std::map<std::string, int> lint_entry_counts(const scale::obs::Json& doc,
                                             const char* array_key,
                                             bool waiver) {
  std::map<std::string, int> out;
  const auto* arr = doc.find(array_key);
  if (arr == nullptr) return out;
  for (const auto& e : arr->elements()) {
    const std::string key =
        e.find("file")->as_string() + "\x01" +
        (waiver ? e.find("kind")->as_string() : e.find("rule")->as_string()) +
        "\x01" +
        (waiver ? e.find("reason")->as_string()
                : e.find("message")->as_string());
    ++out[key];
  }
  return out;
}

/// Human rendering of a multiset key built above.
std::string lint_key_pretty(const std::string& key) {
  std::string s = key;
  for (auto& c : s)
    if (c == '\x01') c = ' ';
  return s;
}

/// The lint gate: every finding and every waiver in the current report must
/// already exist in the baseline (count-wise, so duplicates are handled).
/// Entries that *disappeared* are fine — the tree got cleaner — but are
/// reported as info so the baseline gets refreshed.
int compare_lint(const char* baseline_path, const char* current_path) {
  bool io_error = false;
  const auto baseline = load_lint(baseline_path, &io_error);
  const auto current = load_lint(current_path, &io_error);
  if (io_error) return 2;
  if (!baseline.has_value() || !current.has_value()) return 1;

  int code = 0;
  for (const bool waiver : {false, true}) {
    const char* what = waiver ? "waiver" : "finding";
    const char* array_key = waiver ? "waivers" : "findings";
    const auto want = lint_entry_counts(*baseline, array_key, waiver);
    const auto got = lint_entry_counts(*current, array_key, waiver);
    for (const auto& [key, n] : got) {
      const auto it = want.find(key);
      const int base_n = it == want.end() ? 0 : it->second;
      if (n > base_n) {
        std::fprintf(stderr,
                     "lint-compare: new %s (%d, baseline %d): %s\n"
                     "lint-compare: review it, then re-baseline via "
                     "scripts/lint_baseline.sh\n",
                     what, n, base_n, lint_key_pretty(key).c_str());
        code = 1;
      }
    }
    for (const auto& [key, n] : want) {
      const auto it = got.find(key);
      const int cur_n = it == got.end() ? 0 : it->second;
      if (cur_n < n)
        std::printf("lint-compare: %s gone (good — re-baseline): %s\n", what,
                    lint_key_pretty(key).c_str());
    }
  }
  if (code == 0) std::printf("lint-compare: no new findings or waivers\n");
  return code;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <file.json>...\n"
                 "       %s --compare-allocs <baseline.json> <current.json>\n"
                 "       %s --compare-capacity <baseline.json> "
                 "<current.json>\n"
                 "       %s --lint <file.json>...\n"
                 "       %s --compare-lint <baseline.json> <current.json>\n",
                 argv[0], argv[0], argv[0], argv[0], argv[0]);
    return 2;
  }
  if (std::string(argv[1]) == "--compare-capacity") {
    if (argc != 4) {
      std::fprintf(
          stderr,
          "usage: %s --compare-capacity <baseline.json> <current.json>\n",
          argv[0]);
      return 2;
    }
    return compare_capacity(argv[2], argv[3]);
  }
  if (std::string(argv[1]) == "--compare-allocs") {
    if (argc != 4) {
      std::fprintf(stderr,
                   "usage: %s --compare-allocs <baseline.json> <current.json>\n",
                   argv[0]);
      return 2;
    }
    return compare_allocs(argv[2], argv[3]);
  }
  if (std::string(argv[1]) == "--compare-lint") {
    if (argc != 4) {
      std::fprintf(stderr,
                   "usage: %s --compare-lint <baseline.json> <current.json>\n",
                   argv[0]);
      return 2;
    }
    return compare_lint(argv[2], argv[3]);
  }
  if (std::string(argv[1]) == "--lint") {
    if (argc < 3) {
      std::fprintf(stderr, "usage: %s --lint <file.json>...\n", argv[0]);
      return 2;
    }
    int code = 0;
    for (int i = 2; i < argc; ++i) {
      bool io_error = false;
      const auto doc = load_lint(argv[i], &io_error);
      if (io_error) return 2;
      if (!doc.has_value()) {
        code = 1;
        continue;
      }
      std::printf("%s: OK (%lld finding(s), %lld waiver(s))\n", argv[i],
                  static_cast<long long>(
                      doc->find("counts")->find("findings")->as_int()),
                  static_cast<long long>(
                      doc->find("counts")->find("waivers")->as_int()));
    }
    return code;
  }
  int code = 0;
  for (int i = 1; i < argc; ++i) {
    bool io_error = false;
    const auto doc = load_bench(argv[i], &io_error);
    if (io_error) return 2;
    if (!doc.has_value()) {
      code = 1;
      continue;
    }
    std::printf("%s: OK (%s)\n", argv[i], doc->find("bench")->as_string().c_str());
  }
  return code;
}

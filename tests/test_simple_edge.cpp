// SIMPLE baseline edge behaviours: buddy spill-over under overload, buddy
// re-wiring when VMs are added, routing-table persistence.
#include <gtest/gtest.h>

#include "mme/simple.h"
#include "testbed/testbed.h"
#include "workload/arrivals.h"

namespace scale {
namespace {

using testbed::Testbed;

struct SimpleWorld {
  Testbed tb;
  Testbed::Site* site;
  std::unique_ptr<mme::SimpleLb> lb;
  std::vector<std::unique_ptr<mme::SimpleVm>> vms;

  explicit SimpleWorld(std::size_t vm_count, double cpu_speed = 1.0) {
    site = &tb.add_site(1);
    mme::SimpleLb::Config lb_cfg;
    lb = std::make_unique<mme::SimpleLb>(tb.fabric(), lb_cfg);
    for (std::size_t i = 0; i < vm_count; ++i) add_vm(cpu_speed);
    site->enb(0).add_mme(lb->node(), lb_cfg.mme_code, 1.0);
  }

  mme::SimpleVm& add_vm(double cpu_speed) {
    mme::ClusterVm::Config vm_cfg;
    vm_cfg.sgw = site->sgw->node();
    vm_cfg.hss = tb.hss().node();
    vm_cfg.cpu_speed = cpu_speed;
    vm_cfg.app.assign_guti_locally = false;
    vm_cfg.app.mme_code = 1;
    vm_cfg.app.vm_code = static_cast<std::uint8_t>(vms.size() + 1);
    vm_cfg.app.profile.inactivity_timeout = Duration::ms(500.0);
    vms.push_back(std::make_unique<mme::SimpleVm>(tb.fabric(), vm_cfg));
    lb->add_vm(*vms.back());
    return *vms.back();
  }
};

TEST(SimpleEdge, OverloadedPrimarySpillsToBuddyOnly) {
  SimpleWorld w(3, /*cpu_speed=*/0.25);
  auto ues = w.tb.make_ues(*w.site, 600, {0.8});
  w.tb.register_all(*w.site, Duration::sec(10.0), Duration::sec(6.0));

  // Drive only VM1's devices well past its capacity.
  std::vector<epc::Ue*> vm1_devices;
  for (epc::Ue* ue : ues) {
    if (!ue->registered()) continue;
    const auto* ctx = w.vms[0]->app().store().find(ue->guti()->key());
    // Masters only — VM1 also buddies VM3's replicas.
    if (ctx != nullptr && ctx->role == epc::ContextRole::kMaster)
      vm1_devices.push_back(ue);
  }
  ASSERT_GT(vm1_devices.size(), 50u);

  const auto handled_before_2 = w.vms[1]->requests_handled();
  const auto handled_before_3 = w.vms[2]->requests_handled();
  workload::OpenLoopDriver::Config drv;
  drv.rate_per_sec = 1200.0;
  drv.mix.service_request = 0.5;
  drv.mix.tau = 0.5;
  workload::OpenLoopDriver driver(w.tb.engine(), vm1_devices, drv);
  driver.start(w.tb.engine().now() + Duration::sec(6.0));
  w.tb.run_for(Duration::sec(8.0));

  // Spill goes to VM2 (the buddy) — VM3 holds none of VM1's state and
  // must see none of its traffic.
  EXPECT_GT(w.vms[1]->requests_handled(), handled_before_2);
  EXPECT_EQ(w.vms[2]->requests_handled(), handled_before_3)
      << "SIMPLE must not spread beyond the single buddy";
}

TEST(SimpleEdge, AddVmRewiresBuddyRing) {
  SimpleWorld w(2);
  EXPECT_EQ(w.vms[0]->buddy(), w.vms[1]->node());
  EXPECT_EQ(w.vms[1]->buddy(), w.vms[0]->node());
  w.add_vm(1.0);
  EXPECT_EQ(w.vms[0]->buddy(), w.vms[1]->node());
  EXPECT_EQ(w.vms[1]->buddy(), w.vms[2]->node());
  EXPECT_EQ(w.vms[2]->buddy(), w.vms[0]->node());
}

TEST(SimpleEdge, TableEntryStableAcrossReattach) {
  SimpleWorld w(3);
  epc::Ue& ue = w.tb.make_ue(*w.site, 0, 0.5);
  ue.attach();
  w.tb.run_for(Duration::sec(2.0));
  ASSERT_TRUE(ue.registered());
  const proto::Guti guti = *ue.guti();
  ASSERT_EQ(w.lb->routing_table_size(), 1u);

  // Re-attach with the same GUTI: same table entry, same primary VM.
  std::size_t holder_before = SIZE_MAX;
  for (std::size_t i = 0; i < w.vms.size(); ++i)
    if (w.vms[i]->app().store().contains(guti.key())) holder_before = i;
  ue.attach();
  w.tb.run_for(Duration::sec(2.0));
  EXPECT_EQ(*ue.guti(), guti);
  EXPECT_EQ(w.lb->routing_table_size(), 1u);
  ASSERT_NE(holder_before, SIZE_MAX);
  EXPECT_TRUE(w.vms[holder_before]->app().store().contains(guti.key()));
}

TEST(SimpleEdge, BuddyReplicaTracksIdleSync) {
  SimpleWorld w(2);
  epc::Ue& ue = w.tb.make_ue(*w.site, 0, 0.5);
  ue.attach();
  w.tb.run_for(Duration::sec(3.0));  // attach + idle (0.5 s timer) + sync
  ASSERT_TRUE(ue.registered());
  const std::uint64_t key = ue.guti()->key();

  const mme::UeContext* master = nullptr;
  const mme::UeContext* replica = nullptr;
  for (auto& vm : w.vms) {
    const auto* ctx = vm->app().store().find(key);
    if (ctx == nullptr) continue;
    (ctx->role == epc::ContextRole::kMaster ? master : replica) = ctx;
  }
  ASSERT_NE(master, nullptr);
  ASSERT_NE(replica, nullptr);
  EXPECT_EQ(replica->rec.version, master->rec.version);
  EXPECT_FALSE(replica->rec.active);
}

}  // namespace
}  // namespace scale

// End-to-end integration tests of the classic 3GPP baseline: UE ↔ eNodeB ↔
// MmeNode ↔ {HSS, S-GW} across the simulated fabric. These exercise every
// §2 procedure over the real message exchanges.
#include <gtest/gtest.h>

#include "mme/pool.h"
#include "testbed/testbed.h"

namespace scale {
namespace {

using testbed::Testbed;

struct BaselineWorld {
  Testbed tb;
  Testbed::Site* site;
  std::unique_ptr<mme::MmePool> pool;

  explicit BaselineWorld(std::size_t mmes = 1, std::size_t enbs = 2) {
    site = &tb.add_site(enbs);
    mme::MmePool::Config cfg;
    cfg.node_template.sgw = site->sgw->node();
    cfg.node_template.hss = tb.hss().node();
    cfg.initial_count = mmes;
    pool = std::make_unique<mme::MmePool>(tb.fabric(), cfg);
    for (auto& enb : site->enbs) pool->connect_enb(*enb);
  }
};

TEST(MmeIntegration, AttachCompletesEndToEnd) {
  BaselineWorld w;
  epc::Ue& ue = w.tb.make_ue(*w.site, 0, 0.5);
  EXPECT_TRUE(ue.attach());
  w.tb.run_for(Duration::sec(2.0));

  EXPECT_TRUE(ue.registered());
  EXPECT_TRUE(ue.connected());
  ASSERT_TRUE(ue.guti().has_value());
  EXPECT_EQ(ue.guti()->mme_code, w.pool->mme(0).mme_code());
  EXPECT_EQ(ue.completed(proto::ProcedureType::kAttach), 1u);
  // The MME holds exactly one master context with a live S11 session.
  auto& store = w.pool->mme(0).app().store();
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(w.site->sgw->session_count(), 1u);
  // The HSS actually served the EPS-AKA vector.
  EXPECT_EQ(w.tb.hss().auth_requests_served(), 1u);
  EXPECT_EQ(w.tb.failures(), 0u);
  // And the MME registered itself as the serving node (Update Location).
  EXPECT_EQ(w.tb.hss().serving_mme_of(ue.imsi()),
            static_cast<std::uint32_t>(w.pool->mme(0).mme_code()));
}

TEST(MmeIntegration, AttachWrongKeyFailsAuthentication) {
  BaselineWorld w;
  epc::Ue& ue = w.tb.make_ue(*w.site, 0, 0.5);
  // Corrupt the HSS-side key by re-provisioning with a different one.
  w.tb.hss().provision_subscriber(ue.imsi(), ue.secret_key() ^ 0xDEAD);
  ue.attach();
  w.tb.run_for(Duration::sec(2.0));

  EXPECT_FALSE(ue.connected());
  // At least one auth failure; the testbed's auto-reattach may retry.
  EXPECT_GE(w.pool->mme(0).app().counters().auth_failures, 1u);
}

TEST(MmeIntegration, InactivityMovesDeviceToIdleAndReleasesBearer) {
  BaselineWorld w;
  epc::Ue& ue = w.tb.make_ue(*w.site, 0, 0.5);
  ue.attach();
  w.tb.run_for(Duration::sec(1.0));
  ASSERT_TRUE(ue.connected());
  // Default inactivity timeout is 5 s.
  w.tb.run_for(Duration::sec(7.0));
  EXPECT_TRUE(ue.registered());
  EXPECT_FALSE(ue.connected());
  EXPECT_EQ(w.pool->mme(0).app().counters().idle_transitions, 1u);
}

TEST(MmeIntegration, ServiceRequestReactivatesIdleDevice) {
  BaselineWorld w;
  epc::Ue& ue = w.tb.make_ue(*w.site, 0, 0.5);
  ue.attach();
  w.tb.run_for(Duration::sec(8.0));  // attach + fall idle
  ASSERT_FALSE(ue.connected());

  EXPECT_TRUE(ue.service_request());
  w.tb.run_for(Duration::sec(1.0));
  EXPECT_TRUE(ue.connected());
  EXPECT_EQ(ue.completed(proto::ProcedureType::kServiceRequest), 1u);
  EXPECT_TRUE(w.tb.delays().has("service_request"));
}

TEST(MmeIntegration, TrackingAreaUpdateWhileIdle) {
  BaselineWorld w;
  epc::Ue& ue = w.tb.make_ue(*w.site, 0, 0.5);
  ue.attach();
  w.tb.run_for(Duration::sec(8.0));
  ASSERT_FALSE(ue.connected());

  EXPECT_TRUE(ue.tracking_area_update());
  w.tb.run_for(Duration::sec(1.0));
  EXPECT_EQ(ue.completed(proto::ProcedureType::kTrackingAreaUpdate), 1u);
  EXPECT_FALSE(ue.connected());  // TAU does not activate the device
}

TEST(MmeIntegration, HandoverSwitchesPathToNewEnodeB) {
  BaselineWorld w(1, 2);
  epc::Ue& ue = w.tb.make_ue(*w.site, 0, 0.5);
  ue.attach();
  w.tb.run_for(Duration::sec(1.0));
  ASSERT_TRUE(ue.connected());

  EXPECT_TRUE(ue.handover(w.site->enb(1)));
  w.tb.run_for(Duration::sec(1.0));
  EXPECT_EQ(ue.completed(proto::ProcedureType::kHandover), 1u);
  EXPECT_EQ(ue.serving_enb(), &w.site->enb(1));
  EXPECT_TRUE(ue.connected());
  // MME context now points at the new eNodeB.
  auto* ctx = w.pool->mme(0).app().store().find(ue.guti()->key());
  ASSERT_NE(ctx, nullptr);
  EXPECT_EQ(ctx->rec.enb_id, w.site->enb(1).node());
}

TEST(MmeIntegration, DetachRemovesContextAndSession) {
  BaselineWorld w;
  epc::Ue& ue = w.tb.make_ue(*w.site, 0, 0.5);
  ue.attach();
  w.tb.run_for(Duration::sec(1.0));
  ASSERT_TRUE(ue.registered());

  EXPECT_TRUE(ue.detach());
  w.tb.run_for(Duration::sec(1.0));
  EXPECT_FALSE(ue.registered());
  EXPECT_EQ(w.pool->mme(0).app().store().size(), 0u);
  EXPECT_EQ(w.site->sgw->session_count(), 0u);
}

TEST(MmeIntegration, DownlinkDataTriggersPagingAndReactivation) {
  BaselineWorld w;
  epc::Ue& ue = w.tb.make_ue(*w.site, 0, 0.5);
  ue.attach();
  w.tb.run_for(Duration::sec(8.0));  // idle now
  ASSERT_FALSE(ue.connected());

  const proto::Teid teid = w.site->sgw->teid_for(ue.imsi());
  ASSERT_TRUE(teid.valid());
  EXPECT_TRUE(w.site->sgw->inject_downlink_data(teid));
  w.tb.run_for(Duration::sec(2.0));

  EXPECT_TRUE(ue.connected());  // paged -> service request -> active
  EXPECT_GE(w.pool->mme(0).app().counters().pagings_sent, 1u);
  EXPECT_GE(w.site->enb(0).paging_hits() + w.site->enb(1).paging_hits(), 1u);
}

TEST(MmeIntegration, StaticAssignmentPinsDeviceToOneMme) {
  BaselineWorld w(/*mmes=*/3);
  std::vector<epc::Ue*> ues = w.tb.make_ues(*w.site, 30, {0.5});
  w.tb.register_all(*w.site, Duration::sec(3.0));

  // Each device's GUTI carries its serving MME's code; all later requests
  // route there. Idle them, then service-request and verify no movement.
  w.tb.run_for(Duration::sec(8.0));
  std::vector<std::uint8_t> codes;
  for (epc::Ue* ue : ues) {
    ASSERT_TRUE(ue->registered());
    codes.push_back(ue->guti()->mme_code);
    ue->service_request();
  }
  w.tb.run_for(Duration::sec(2.0));
  for (std::size_t i = 0; i < ues.size(); ++i) {
    ASSERT_TRUE(ues[i]->registered());
    EXPECT_EQ(ues[i]->guti()->mme_code, codes[i])
        << "device " << i << " moved MMEs without a redirect";
  }
  // And the population is spread across pool members (weighted selection).
  std::size_t with_devices = 0;
  for (auto& node : w.pool->mmes())
    if (node->app().store().size() > 0) ++with_devices;
  EXPECT_EQ(with_devices, 3u);
}

}  // namespace
}  // namespace scale

// MME application edge cases: rejects, unknown contexts, paging fan-out
// across tracking areas, authentication failures mid-procedure, and
// robustness against hostile/garbage input.
#include <gtest/gtest.h>

#include "mme/pool.h"
#include "proto/codec.h"
#include "testbed/testbed.h"

namespace scale {
namespace {

using testbed::Testbed;

TEST(MmeEdge, PagingFansOutOnlyToTrackingArea) {
  // Two sites = two tracking areas sharing one pool; paging for a device
  // in TA 1 must not wake eNodeBs in TA 2.
  Testbed tb;
  auto& site1 = tb.add_site(2, /*tac=*/1);
  auto& site2 = tb.add_site(2, /*tac=*/2);
  mme::MmePool::Config cfg;
  cfg.node_template.sgw = site1.sgw->node();
  cfg.node_template.hss = tb.hss().node();
  cfg.initial_count = 1;
  mme::MmePool pool(tb.fabric(), cfg);
  for (auto& enb : site1.enbs) pool.connect_enb(*enb);
  for (auto& enb : site2.enbs) pool.connect_enb(*enb);

  epc::Ue& ue = tb.make_ue(site1, 0, 0.5);
  ue.attach();
  tb.run_for(Duration::sec(8.0));
  ASSERT_FALSE(ue.connected());

  const proto::Teid teid = site1.sgw->teid_for(ue.imsi());
  ASSERT_TRUE(site1.sgw->inject_downlink_data(teid));
  tb.run_for(Duration::sec(2.0));
  EXPECT_TRUE(ue.connected());
  EXPECT_GE(site1.enb(0).paging_hits() + site1.enb(1).paging_hits(), 1u);
  EXPECT_EQ(site2.enb(0).paging_hits() + site2.enb(1).paging_hits(), 0u);
}

TEST(MmeEdge, UnknownServiceRequestGetsReject) {
  Testbed::Config tcfg;
  tcfg.auto_reattach = false;
  Testbed tb(tcfg);
  auto& site = tb.add_site(1);
  mme::MmePool::Config cfg;
  cfg.node_template.sgw = site.sgw->node();
  cfg.node_template.hss = tb.hss().node();
  cfg.initial_count = 1;
  mme::MmePool pool(tb.fabric(), cfg);
  pool.connect_enb(site.enb(0));

  epc::Ue& ue = tb.make_ue(site, 0, 0.5);
  ue.attach();
  tb.run_for(Duration::sec(8.0));
  ASSERT_FALSE(ue.connected());

  // The MME loses the context (e.g. operator maintenance wipes the VM).
  pool.mme(0).app().remove_context(ue.guti()->key());
  EXPECT_TRUE(ue.service_request());
  tb.run_for(Duration::sec(2.0));
  EXPECT_FALSE(ue.registered());  // ServiceReject pushed it to Deregistered
  EXPECT_EQ(pool.mme(0).app().counters().rejects_sent, 1u);
  EXPECT_EQ(ue.failures(), 1u);
}

TEST(MmeEdge, UnknownSubscriberAttachRejected) {
  Testbed::Config tcfg;
  tcfg.auto_reattach = false;
  Testbed tb(tcfg);
  auto& site = tb.add_site(1);
  mme::MmePool::Config cfg;
  cfg.node_template.sgw = site.sgw->node();
  cfg.node_template.hss = tb.hss().node();
  cfg.initial_count = 1;
  mme::MmePool pool(tb.fabric(), cfg);
  pool.connect_enb(site.enb(0));

  // A UE whose IMSI the HSS does not know: build one manually.
  epc::Ue::Config ue_cfg;
  ue_cfg.imsi = 999'000'000'000'000ull;
  ue_cfg.secret_key = 42;
  epc::Ue ue(tb.engine(), &site.enb(0), ue_cfg);
  EXPECT_TRUE(ue.attach());
  tb.run_for(Duration::sec(3.0));
  EXPECT_FALSE(ue.registered());
  EXPECT_GE(pool.mme(0).app().counters().auth_failures, 1u);
}

TEST(MmeEdge, DuplicateAttachWhileFirstInFlight) {
  // A UE retriggers attach before the first completes (e.g. baseband
  // retry): the UE layer refuses the duplicate, so exactly one context and
  // one session result.
  Testbed tb;
  auto& site = tb.add_site(1);
  mme::MmePool::Config cfg;
  cfg.node_template.sgw = site.sgw->node();
  cfg.node_template.hss = tb.hss().node();
  cfg.initial_count = 1;
  mme::MmePool pool(tb.fabric(), cfg);
  pool.connect_enb(site.enb(0));

  epc::Ue& ue = tb.make_ue(site, 0, 0.5);
  EXPECT_TRUE(ue.attach());
  EXPECT_FALSE(ue.attach());
  EXPECT_FALSE(ue.attach());
  tb.run_for(Duration::sec(2.0));
  EXPECT_TRUE(ue.connected());
  EXPECT_EQ(pool.mme(0).app().store().size(), 1u);
  EXPECT_EQ(site.sgw->session_count(), 1u);
}

TEST(MmeEdge, GarbagePdusDoNotCrashEntities) {
  Testbed tb;
  auto& site = tb.add_site(1);
  mme::MmePool::Config cfg;
  cfg.node_template.sgw = site.sgw->node();
  cfg.node_template.hss = tb.hss().node();
  cfg.initial_count = 1;
  mme::MmePool pool(tb.fabric(), cfg);
  pool.connect_enb(site.enb(0));

  // Shower every entity with PDUs it never expects.
  const std::vector<proto::Pdu> garbage = {
      proto::make_pdu(proto::Paging{123, 9}),
      proto::make_pdu(proto::CreateSessionResponse{}),
      proto::make_pdu(proto::AuthInfoAnswer{}),
      proto::make_pdu(proto::UplinkNasTransport{
          1, 2, proto::MmeUeId::make(9, 9),
          proto::NasMessage{proto::NasServiceRequest{}}}),
      proto::pdu_of(proto::ClusterMessage{proto::LoadReport{1, 0.5, 3}}),
      proto::pdu_of(
          proto::ClusterMessage{proto::StateTransferAck{proto::Guti{}}}),
  };
  const std::vector<sim::NodeId> targets = {
      pool.mme(0).node(), site.sgw->node(), tb.hss().node(),
      site.enb(0).node()};
  for (sim::NodeId target : targets)
    for (const auto& pdu : garbage)
      tb.fabric().send(site.enb(0).node(), target, pdu);
  tb.run_for(Duration::sec(1.0));

  // The system still works afterwards.
  epc::Ue& ue = tb.make_ue(site, 0, 0.5);
  EXPECT_TRUE(ue.attach());
  tb.run_for(Duration::sec(2.0));
  EXPECT_TRUE(ue.connected());
}

TEST(MmeEdge, IdleTimerResetByActivity) {
  Testbed tb;
  auto& site = tb.add_site(2);
  mme::MmePool::Config cfg;
  cfg.node_template.sgw = site.sgw->node();
  cfg.node_template.hss = tb.hss().node();
  cfg.node_template.app.profile.inactivity_timeout = Duration::sec(3.0);
  cfg.initial_count = 1;
  mme::MmePool pool(tb.fabric(), cfg);
  for (auto& enb : site.enbs) pool.connect_enb(*enb);

  epc::Ue& ue = tb.make_ue(site, 0, 0.5);
  ue.attach();
  tb.run_for(Duration::sec(2.0));
  ASSERT_TRUE(ue.connected());
  // Keep the device busy with handovers every 2 s: the 3 s inactivity
  // timer must keep resetting.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(ue.handover(site.enb(i % 2 == 0 ? 1 : 0)));
    tb.run_for(Duration::sec(2.0));
    EXPECT_TRUE(ue.connected()) << "activity must defer the idle release";
  }
  tb.run_for(Duration::sec(4.0));
  EXPECT_FALSE(ue.connected()) << "quiet period must trigger the release";
}

TEST(MmeEdge, DetachOfUnknownDeviceIsIdempotent) {
  Testbed tb;
  auto& site = tb.add_site(1);
  mme::MmePool::Config cfg;
  cfg.node_template.sgw = site.sgw->node();
  cfg.node_template.hss = tb.hss().node();
  cfg.initial_count = 1;
  mme::MmePool pool(tb.fabric(), cfg);
  pool.connect_enb(site.enb(0));

  epc::Ue& ue = tb.make_ue(site, 0, 0.5);
  ue.attach();
  tb.run_for(Duration::sec(2.0));
  ASSERT_TRUE(ue.registered());
  pool.mme(0).app().remove_context(ue.guti()->key());  // context gone
  EXPECT_TRUE(ue.detach());
  tb.run_for(Duration::sec(2.0));
  EXPECT_FALSE(ue.registered());  // accepted anyway — device is clean
}

}  // namespace
}  // namespace scale

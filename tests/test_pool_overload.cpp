// Reactive overload protection of the 3GPP pool baseline (§3.1-2): when an
// MME trips its threshold, devices are redirected with state transfers —
// extra signaling on both MMEs, the phenomenon behind Figs. 2(b,c).
#include <gtest/gtest.h>

#include "mme/pool.h"
#include "testbed/testbed.h"
#include "workload/arrivals.h"

namespace scale {
namespace {

using testbed::Testbed;

struct OverloadWorld {
  Testbed tb;
  Testbed::Site* site;
  std::unique_ptr<mme::MmePool> pool;

  OverloadWorld() {
    site = &tb.add_site(1);
    mme::MmePool::Config cfg;
    cfg.node_template.sgw = site->sgw->node();
    cfg.node_template.hss = tb.hss().node();
    cfg.node_template.overload_protection = true;
    cfg.node_template.overload_threshold = 0.85;
    // Slow MMEs (≈60 service requests/s) so a modest device population can
    // saturate one; short inactivity so devices cycle Idle→Active quickly.
    cfg.node_template.cpu_speed = 0.03;
    cfg.node_template.app.profile.inactivity_timeout = Duration::sec(1.0);
    cfg.initial_count = 2;
    pool = std::make_unique<mme::MmePool>(tb.fabric(), cfg);
    for (auto& enb : site->enbs) pool->connect_enb(*enb);
  }
};

TEST(PoolOverload, OverloadedMmeShedsDevicesToPeer) {
  OverloadWorld w;
  // Register 200 devices; static assignment spreads them over both MMEs.
  auto ues = w.tb.make_ues(*w.site, 200, {0.8});
  w.tb.register_all(*w.site, Duration::sec(8.0), Duration::sec(8.0));

  // Find devices pinned to MME1 and hammer only those, overloading it.
  const std::uint8_t code1 = w.pool->mme(0).mme_code();
  std::vector<epc::Ue*> mme1_devices;
  for (epc::Ue* ue : ues)
    if (ue->registered() && ue->guti()->mme_code == code1)
      mme1_devices.push_back(ue);
  ASSERT_GT(mme1_devices.size(), 30u);

  workload::OpenLoopDriver::Config cfg;
  cfg.rate_per_sec = 400.0;  // several times one MME's capacity
  cfg.mix.service_request = 0.6;
  cfg.mix.tau = 0.4;  // TAUs keep load up even while devices are Active
  workload::OpenLoopDriver driver(w.tb.engine(), mme1_devices, cfg);
  driver.start(w.tb.engine().now() + Duration::sec(10.0));
  w.tb.run_for(Duration::sec(14.0));

  // The overloaded MME shed devices, the peer installed transferred state.
  EXPECT_GT(w.pool->mme(0).devices_shed(), 0u);
  EXPECT_GT(w.pool->mme(1).transfers_received(), 0u);
  // Shed devices re-attached and now carry the peer's MME code.
  std::size_t moved = 0;
  for (epc::Ue* ue : mme1_devices)
    if (ue->registered() && ue->guti()->mme_code != code1) ++moved;
  EXPECT_GT(moved, 0u);
}

TEST(PoolOverload, NoSheddingBelowThreshold) {
  OverloadWorld w;
  auto ues = w.tb.make_ues(*w.site, 50, {0.5});
  w.tb.register_all(*w.site, Duration::sec(4.0), Duration::sec(8.0));

  workload::OpenLoopDriver::Config cfg;
  cfg.rate_per_sec = 5.0;  // light load even for the slow MMEs
  workload::OpenLoopDriver driver(w.tb.engine(), ues, cfg);
  driver.start(w.tb.engine().now() + Duration::sec(8.0));
  w.tb.run_for(Duration::sec(10.0));

  EXPECT_EQ(w.pool->mme(0).devices_shed(), 0u);
  EXPECT_EQ(w.pool->mme(1).devices_shed(), 0u);
}

TEST(PoolOverload, ScaleOutOnlyCapturesUnregisteredDevices) {
  // Fig. 2(d): a pool member added at runtime cannot take over existing
  // registrations — their GUTIs keep routing to the original MME.
  Testbed tb;
  auto& site = tb.add_site(1);
  mme::MmePool::Config cfg;
  cfg.node_template.sgw = site.sgw->node();
  cfg.node_template.hss = tb.hss().node();
  cfg.initial_count = 1;
  mme::MmePool pool(tb.fabric(), cfg);
  pool.connect_enb(site.enb(0));

  auto registered = tb.make_ues(site, 60, {0.5});
  tb.register_all(site, Duration::sec(3.0), Duration::sec(6.0));
  const std::uint8_t old_code = pool.mme(0).mme_code();

  // Scale out with a strong selection weight for new registrations.
  auto& fresh_mme = pool.add_mme(/*weight=*/10.0);
  auto newcomers = tb.make_ues(site, 60, {0.5});
  tb.register_all(site, Duration::sec(3.0), Duration::sec(6.0));

  // Existing devices stayed on the old MME...
  for (epc::Ue* ue : registered) {
    ASSERT_TRUE(ue->registered());
    EXPECT_EQ(ue->guti()->mme_code, old_code);
  }
  // ...while most newcomers landed on the new one.
  std::size_t on_new = 0;
  for (epc::Ue* ue : newcomers)
    if (ue->registered() && ue->guti()->mme_code == fresh_mme.mme_code())
      ++on_new;
  EXPECT_GT(on_new, newcomers.size() / 2);
  EXPECT_GT(fresh_mme.app().store().size(), 0u);
}

}  // namespace
}  // namespace scale

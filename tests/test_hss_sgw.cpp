// Direct protocol-level tests of the HSS and S-GW substrate nodes using a
// scripted endpoint instead of a full MME.
#include <gtest/gtest.h>

#include <vector>

#include "epc/fabric.h"
#include "epc/hss.h"
#include "epc/sgw.h"
#include "proto/codec.h"

namespace scale::epc {
namespace {

class Probe : public Endpoint {
 public:
  explicit Probe(Fabric& fabric) : fabric_(fabric) {
    node_ = fabric.add_endpoint(this);
  }
  ~Probe() override { fabric_.remove_endpoint(node_); }

  void receive(NodeId, const proto::Pdu& pdu) override {
    inbox.push_back(pdu);
  }

  NodeId node() const { return node_; }
  std::vector<proto::Pdu> inbox;

 private:
  Fabric& fabric_;
  NodeId node_ = 0;
};

struct World {
  sim::Engine engine;
  sim::Network network{Duration::us(100)};
  Fabric fabric{engine, network};
  Hss hss{fabric};
  Sgw sgw{fabric};
  Probe probe{fabric};
};

TEST(Hss, AuthVectorVerifiableByUsim) {
  World w;
  const std::uint64_t key = 0x1234;
  w.hss.provision_subscriber(1001, key);

  proto::AuthInfoRequest req;
  req.imsi = 1001;
  req.hop_ref = 777;
  w.fabric.send(w.probe.node(), w.hss.node(), proto::make_pdu(req));
  w.engine.run();

  ASSERT_EQ(w.probe.inbox.size(), 1u);
  const auto& ans = std::get<proto::AuthInfoAnswer>(
      std::get<proto::S6Message>(w.probe.inbox[0]));
  EXPECT_TRUE(ans.known_subscriber);
  EXPECT_EQ(ans.hop_ref, 777u);  // Diameter hop-by-hop echo
  // The USIM computes the same RES from (key, rand) — a real check.
  EXPECT_EQ(Hss::f_res(key, ans.rand), ans.xres);
  EXPECT_NE(Hss::f_res(key ^ 1, ans.rand), ans.xres);
  EXPECT_EQ(w.hss.auth_requests_served(), 1u);
}

TEST(Hss, UnknownSubscriberFlagged) {
  World w;
  proto::AuthInfoRequest req;
  req.imsi = 9999;
  w.fabric.send(w.probe.node(), w.hss.node(), proto::make_pdu(req));
  w.engine.run();
  const auto& ans = std::get<proto::AuthInfoAnswer>(
      std::get<proto::S6Message>(w.probe.inbox.at(0)));
  EXPECT_FALSE(ans.known_subscriber);
}

TEST(Hss, UpdateLocationTracksServingMme) {
  World w;
  w.hss.provision_subscriber(5, 1, /*profile_id=*/42);
  proto::UpdateLocationRequest req;
  req.imsi = 5;
  req.mme_id = 33;
  req.hop_ref = 3;
  w.fabric.send(w.probe.node(), w.hss.node(), proto::make_pdu(req));
  w.engine.run();
  const auto& ans = std::get<proto::UpdateLocationAnswer>(
      std::get<proto::S6Message>(w.probe.inbox.at(0)));
  EXPECT_TRUE(ans.ok);
  EXPECT_EQ(ans.profile_id, 42u);
  EXPECT_EQ(ans.hop_ref, 3u);
}

TEST(Sgw, SessionLifecycle) {
  World w;
  // Create.
  proto::CreateSessionRequest create;
  create.imsi = 7;
  create.mme_teid = proto::Teid::make(1, 5);
  w.fabric.send(w.probe.node(), w.sgw.node(), proto::make_pdu(create));
  w.engine.run();
  ASSERT_EQ(w.probe.inbox.size(), 1u);
  const auto resp = std::get<proto::CreateSessionResponse>(
      std::get<proto::S11Message>(w.probe.inbox[0]));
  EXPECT_EQ(resp.mme_teid, create.mme_teid);
  EXPECT_TRUE(resp.sgw_teid.valid());
  EXPECT_EQ(w.sgw.session_count(), 1u);
  EXPECT_EQ(w.sgw.teid_for(7), resp.sgw_teid);

  // Modify (activates bearer).
  proto::ModifyBearerRequest modify;
  modify.sgw_teid = resp.sgw_teid;
  modify.mme_teid = create.mme_teid;
  modify.enb_id = 12;
  w.fabric.send(w.probe.node(), w.sgw.node(), proto::make_pdu(modify));
  w.engine.run();
  EXPECT_EQ(w.probe.inbox.size(), 2u);

  // Downlink data with active bearer: delivered, no DDN.
  EXPECT_TRUE(w.sgw.inject_downlink_data(resp.sgw_teid));
  w.engine.run();
  EXPECT_EQ(w.sgw.ddn_sent(), 0u);

  // Release, then downlink data must trigger a DDN to the control node.
  proto::ReleaseAccessBearersRequest release;
  release.sgw_teid = resp.sgw_teid;
  release.mme_teid = create.mme_teid;
  w.fabric.send(w.probe.node(), w.sgw.node(), proto::make_pdu(release));
  w.engine.run();
  EXPECT_TRUE(w.sgw.inject_downlink_data(resp.sgw_teid));
  w.engine.run();
  EXPECT_EQ(w.sgw.ddn_sent(), 1u);
  const auto& ddn = std::get<proto::DownlinkDataNotification>(
      std::get<proto::S11Message>(w.probe.inbox.back()));
  EXPECT_EQ(ddn.mme_teid, create.mme_teid);

  // Delete.
  proto::DeleteSessionRequest del;
  del.sgw_teid = resp.sgw_teid;
  del.mme_teid = create.mme_teid;
  w.fabric.send(w.probe.node(), w.sgw.node(), proto::make_pdu(del));
  w.engine.run();
  EXPECT_EQ(w.sgw.session_count(), 0u);
  EXPECT_FALSE(w.sgw.teid_for(7).valid());
}

TEST(Sgw, DownlinkDataForUnknownSessionReturnsFalse) {
  World w;
  EXPECT_FALSE(w.sgw.inject_downlink_data(proto::Teid{999}));
}

TEST(Fabric, DeliveryDelayAndAccounting) {
  World w;
  w.network.set_latency(w.probe.node(), w.sgw.node(), Duration::ms(5.0));
  proto::CreateSessionRequest create;
  create.imsi = 1;
  create.mme_teid = proto::Teid::make(1, 1);
  w.fabric.send(w.probe.node(), w.sgw.node(), proto::make_pdu(create));
  EXPECT_EQ(w.sgw.session_count(), 0u);  // not delivered yet
  w.engine.run_until(Time::from_us(4000));
  EXPECT_EQ(w.sgw.session_count(), 0u);
  w.engine.run();
  EXPECT_EQ(w.sgw.session_count(), 1u);
  EXPECT_GE(w.network.messages_sent(), 1u);
  EXPECT_GT(w.network.bytes_sent(), 0u);
}

TEST(Fabric, SendToDepartedNodeIsCountedDrop) {
  World w;
  NodeId departed;
  {
    Probe temp(w.fabric);
    departed = temp.node();
  }  // unregistered here
  w.fabric.send(w.probe.node(), departed,
                proto::make_pdu(proto::Paging{1, 1}));
  w.engine.run();
  EXPECT_EQ(w.fabric.dropped(), 1u);
}

}  // namespace
}  // namespace scale::epc

#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/check.h"
#include "common/rng.h"

#include "epc/ue_context.h"

namespace scale::epc {
namespace {

proto::UeContextRecord rec_for(std::uint32_t tmsi, proto::Imsi imsi,
                               std::uint32_t bytes = 2048) {
  proto::UeContextRecord rec;
  rec.guti = proto::Guti{1, 1, 1, tmsi};
  rec.imsi = imsi;
  rec.state_bytes = bytes;
  return rec;
}

TEST(ContextStore, InsertFindErase) {
  UeContextStore store;
  auto& ctx = store.insert(rec_for(100, 1), ContextRole::kMaster);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.find(ctx.key()), &ctx);
  EXPECT_TRUE(store.contains(ctx.key()));
  store.erase(ctx.key());
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.find(proto::Guti{1, 1, 1, 100}.key()), nullptr);
}

TEST(ContextStore, DuplicateInsertRejected) {
  UeContextStore store;
  store.insert(rec_for(100, 1), ContextRole::kMaster);
  EXPECT_THROW(store.insert(rec_for(100, 2), ContextRole::kMaster),
               scale::CheckError);
}

TEST(ContextStore, EraseUnknownRejected) {
  UeContextStore store;
  EXPECT_THROW(store.erase(42), scale::CheckError);
}

TEST(ContextStore, SecondaryIndices) {
  UeContextStore store;
  auto rec = rec_for(100, 777);
  rec.mme_teid = proto::Teid::make(2, 5);
  rec.mme_ue_id = proto::MmeUeId::make(2, 9);
  auto& ctx = store.insert(rec, ContextRole::kMaster);

  EXPECT_EQ(store.find_by_imsi(777), &ctx);
  EXPECT_EQ(store.find_by_teid(proto::Teid::make(2, 5)), &ctx);
  EXPECT_EQ(store.find_by_mme_ue_id(proto::MmeUeId::make(2, 9)), &ctx);
  EXPECT_EQ(store.find_by_imsi(1), nullptr);

  // Re-index after the MME assigns new identifiers.
  ctx.rec.mme_teid = proto::Teid::make(3, 6);
  store.index_teid(ctx);
  EXPECT_EQ(store.find_by_teid(proto::Teid::make(3, 6)), &ctx);

  store.erase(ctx.key());
  EXPECT_EQ(store.find_by_imsi(777), nullptr);
  EXPECT_EQ(store.find_by_teid(proto::Teid::make(3, 6)), nullptr);
}

TEST(ContextStore, MemoryAccountingByRole) {
  UeContextStore store;
  store.insert(rec_for(1, 1, 1000), ContextRole::kMaster);
  store.insert(rec_for(2, 2, 2000), ContextRole::kReplica);
  store.insert(rec_for(3, 3, 4000), ContextRole::kExternal);

  EXPECT_EQ(store.total_bytes(), 7000u);
  EXPECT_EQ(store.bytes(ContextRole::kMaster), 1000u);
  EXPECT_EQ(store.bytes(ContextRole::kReplica), 2000u);
  EXPECT_EQ(store.bytes(ContextRole::kExternal), 4000u);
  EXPECT_EQ(store.count(ContextRole::kMaster), 1u);

  store.erase(proto::Guti{1, 1, 1, 2}.key());
  EXPECT_EQ(store.total_bytes(), 5000u);
  EXPECT_EQ(store.bytes(ContextRole::kReplica), 0u);
}

TEST(ContextStore, SetRoleMovesAccounting) {
  UeContextStore store;
  auto& ctx = store.insert(rec_for(1, 1, 1000), ContextRole::kMaster);
  store.set_role(ctx, ContextRole::kReplica);
  EXPECT_EQ(ctx.role, ContextRole::kReplica);
  EXPECT_EQ(store.bytes(ContextRole::kMaster), 0u);
  EXPECT_EQ(store.bytes(ContextRole::kReplica), 1000u);
  EXPECT_EQ(store.count(ContextRole::kReplica), 1u);
  // No-op role change keeps accounting intact.
  store.set_role(ctx, ContextRole::kReplica);
  EXPECT_EQ(store.bytes(ContextRole::kReplica), 1000u);
}

TEST(ContextStore, RekeyPreservesContextUnderNewGuti) {
  UeContextStore store;
  auto& ctx = store.insert(rec_for(100, 42), ContextRole::kMaster);
  const std::uint64_t old_key = ctx.key();
  const proto::Guti fresh{1, 1, 9, 555};
  auto& moved = store.rekey(old_key, fresh);
  EXPECT_EQ(&moved, &ctx);
  EXPECT_EQ(moved.rec.guti, fresh);
  EXPECT_EQ(store.find(old_key), nullptr);
  EXPECT_EQ(store.find(fresh.key()), &moved);
  // IMSI index still resolves.
  EXPECT_EQ(store.find_by_imsi(42), &moved);
}

TEST(ContextStore, RekeyCollisionRejected) {
  UeContextStore store;
  store.insert(rec_for(1, 1), ContextRole::kMaster);
  auto& b = store.insert(rec_for(2, 2), ContextRole::kMaster);
  EXPECT_THROW(store.rekey(b.key(), proto::Guti{1, 1, 1, 1}),
               scale::CheckError);
}

TEST(ContextStore, ForEachAndKeysIf) {
  UeContextStore store;
  for (std::uint32_t i = 1; i <= 10; ++i)
    store.insert(rec_for(i, i), i % 2 ? ContextRole::kMaster
                                      : ContextRole::kReplica);
  std::size_t visited = 0;
  store.for_each([&](UeContext&) { ++visited; });
  EXPECT_EQ(visited, 10u);
  const auto masters = store.keys_if(
      [](const UeContext& c) { return c.role == ContextRole::kMaster; });
  EXPECT_EQ(masters.size(), 5u);
}

// --- Randomized churn at MillionUE scale (DESIGN.md §12) -------------------
//
// Grows the store past 100 K live contexts through a weighted mix of
// insert / erase / rekey / set_role / TEID-reassignment ops, mirrored in
// plain reference containers. Checks, periodically and at the end:
//   * index consistency — every mirrored key resolves through find() and the
//     secondary indices to the pointer captured at insert time (the slab's
//     stable-reference contract across ~15 chunk growths);
//   * byte accounting — per-role counts and bytes equal the mirror's sums;
//   * audit() — the store's own O(n) invariant sweep;
//   * a pinned digest over the sorted live (key, role, bytes) tuples, so the
//     surviving population and for_each's sorted order are held bit-for-bit.

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

TEST(ContextStoreChurn, HundredThousandContextsStayConsistent) {
  struct Mirror {
    const UeContext* ptr;  ///< address returned by insert(); must never move
    proto::Imsi imsi;
    std::uint32_t bytes;
    ContextRole role;
    std::uint32_t teid_raw;  ///< 0 = none indexed
  };
  UeContextStore store;
  std::unordered_map<std::uint64_t, Mirror> mirror;
  std::vector<std::uint64_t> keys;  // dense set for uniform random picks
  std::unordered_map<std::uint64_t, std::size_t> pos;

  Rng rng(0x5CA1Eull);
  std::uint32_t next_tmsi = 1;  // mme_code 1 namespace; rekeys move to code 2
  std::uint32_t next_rekey_tmsi = 1;
  std::uint32_t next_teid_seq = 1;
  std::uint32_t next_ue_seq = 1;
  proto::Imsi next_imsi = 1;

  std::array<std::uint64_t, 3> want_bytes{};
  std::array<std::size_t, 3> want_count{};
  const auto role_of = [](std::uint64_t r) {
    return static_cast<ContextRole>(r);
  };

  const auto track = [&](std::uint64_t key, Mirror m) {
    mirror.emplace(key, m);
    pos.emplace(key, keys.size());
    keys.push_back(key);
    want_bytes[static_cast<std::size_t>(m.role)] += m.bytes;
    ++want_count[static_cast<std::size_t>(m.role)];
  };
  const auto untrack = [&](std::uint64_t key) {
    const Mirror m = mirror.at(key);
    want_bytes[static_cast<std::size_t>(m.role)] -= m.bytes;
    --want_count[static_cast<std::size_t>(m.role)];
    mirror.erase(key);
    const std::size_t i = pos.at(key);
    pos.erase(key);
    keys[i] = keys.back();
    keys.pop_back();
    if (i < keys.size()) pos[keys[i]] = i;
  };
  const auto pick = [&]() { return keys[rng.next_below(keys.size())]; };

  const auto do_insert = [&]() {
    proto::UeContextRecord rec;
    rec.guti = proto::Guti{1, 1, 1, next_tmsi++};
    rec.imsi = next_imsi++;
    rec.state_bytes =
        static_cast<std::uint32_t>(rng.uniform_int(512, 4096));
    const ContextRole role = role_of(rng.next_below(3));
    std::uint32_t teid_raw = 0;
    if (rng.chance(0.5)) {
      rec.mme_teid = proto::Teid::make(3, next_teid_seq++);
      rec.mme_ue_id = proto::MmeUeId::make(3, next_ue_seq++);
      teid_raw = rec.mme_teid.raw;
    }
    const UeContext& ctx = store.insert(rec, role);
    track(ctx.key(), {&ctx, rec.imsi, rec.state_bytes, role, teid_raw});
  };

  const auto check_live = [&](std::uint64_t key) {
    const Mirror& m = mirror.at(key);
    UeContext* ctx = store.find(key);
    ASSERT_EQ(ctx, m.ptr) << "pointer moved or lookup failed, key=" << key;
    EXPECT_EQ(ctx->role, m.role);
    EXPECT_EQ(ctx->rec.state_bytes, m.bytes);
    EXPECT_EQ(store.find_by_imsi(m.imsi), ctx);
    if (m.teid_raw != 0)
      EXPECT_EQ(store.find_by_teid(proto::Teid{m.teid_raw}), ctx);
  };

  const auto checkpoint = [&]() {
    ASSERT_EQ(store.size(), mirror.size());
    for (std::size_t r = 0; r < 3; ++r) {
      EXPECT_EQ(store.count(role_of(r)), want_count[r]);
      EXPECT_EQ(store.bytes(role_of(r)), want_bytes[r]);
    }
    EXPECT_EQ(store.total_bytes(),
              want_bytes[0] + want_bytes[1] + want_bytes[2]);
    // Spot-check 64 random live contexts (full sweep happens at the end).
    for (int i = 0; i < 64 && !keys.empty(); ++i) check_live(pick());
    store.audit();
  };

  // Phase 1 — growth: insert-heavy mix until 120 K live contexts.
  while (keys.size() < 120000) {
    if (rng.next_below(100) < 85 || keys.empty()) {
      do_insert();
    } else {
      const std::uint64_t key = pick();
      store.erase(key);
      untrack(key);
    }
    if (!keys.empty() && keys.size() % 30000 == 0) checkpoint();
  }
  checkpoint();

  // Phase 2 — steady churn: 150 K weighted ops over the full API.
  for (std::uint32_t step = 0; step < 150000; ++step) {
    const std::uint64_t op = rng.next_below(100);
    if (op < 25) {
      do_insert();
    } else if (op < 50) {
      const std::uint64_t key = pick();
      store.erase(key);
      untrack(key);
    } else if (op < 60) {
      // Rekey into the mme_code-2 namespace (fresh-GUTI adoption path).
      const std::uint64_t old_key = pick();
      Mirror m = mirror.at(old_key);
      const proto::Guti fresh{1, 1, 2, next_rekey_tmsi++};
      UeContext& moved = store.rekey(old_key, fresh);
      ASSERT_EQ(&moved, m.ptr);
      untrack(old_key);
      track(fresh.key(), m);
    } else if (op < 75) {
      const std::uint64_t key = pick();
      Mirror& m = mirror.at(key);
      const ContextRole to = role_of(rng.next_below(3));
      store.set_role(*store.find(key), to);
      want_bytes[static_cast<std::size_t>(m.role)] -= m.bytes;
      --want_count[static_cast<std::size_t>(m.role)];
      m.role = to;
      want_bytes[static_cast<std::size_t>(to)] += m.bytes;
      ++want_count[static_cast<std::size_t>(to)];
    } else if (op < 85) {
      // Mid-procedure TEID reassignment: the shadow column must unindex the
      // old key exactly, whether or not one was indexed before.
      const std::uint64_t key = pick();
      Mirror& m = mirror.at(key);
      UeContext* ctx = store.find(key);
      ctx->rec.mme_teid = proto::Teid::make(4, next_teid_seq++);
      store.index_teid(*ctx);
      m.teid_raw = ctx->rec.mme_teid.raw;
    } else {
      check_live(pick());
    }
    if (step % 30000 == 29999) checkpoint();
  }
  checkpoint();

  // Full sweep: every surviving context, all four lookup paths.
  for (const std::uint64_t key : keys) check_live(key);

  // Digest of the sorted live population via for_each (ascending GUTI key).
  std::uint64_t digest = 0;
  std::uint64_t prev_key = 0;
  bool first = true;
  store.for_each([&](UeContext& ctx) {
    if (!first) EXPECT_LT(prev_key, ctx.key());
    first = false;
    prev_key = ctx.key();
    digest = mix64(digest ^ mix64(ctx.key()) ^
                   mix64(static_cast<std::uint64_t>(ctx.role)) ^
                   mix64(ctx.rec.state_bytes));
  });
  // Pinned: the churn trajectory is deterministic (seeded xoshiro, no
  // layout-order dependence), so this digest is identical on every platform.
  EXPECT_EQ(digest, 0x345E8A55364068CBull);

  // Drain completely; accounting must return to zero.
  while (!keys.empty()) {
    const std::uint64_t key = keys.back();
    store.erase(key);
    untrack(key);
  }
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.total_bytes(), 0u);
  store.audit();
}

}  // namespace
}  // namespace scale::epc

#include <gtest/gtest.h>

#include "common/check.h"

#include "epc/ue_context.h"

namespace scale::epc {
namespace {

proto::UeContextRecord rec_for(std::uint32_t tmsi, proto::Imsi imsi,
                               std::uint32_t bytes = 2048) {
  proto::UeContextRecord rec;
  rec.guti = proto::Guti{1, 1, 1, tmsi};
  rec.imsi = imsi;
  rec.state_bytes = bytes;
  return rec;
}

TEST(ContextStore, InsertFindErase) {
  UeContextStore store;
  auto& ctx = store.insert(rec_for(100, 1), ContextRole::kMaster);
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.find(ctx.key()), &ctx);
  EXPECT_TRUE(store.contains(ctx.key()));
  store.erase(ctx.key());
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.find(proto::Guti{1, 1, 1, 100}.key()), nullptr);
}

TEST(ContextStore, DuplicateInsertRejected) {
  UeContextStore store;
  store.insert(rec_for(100, 1), ContextRole::kMaster);
  EXPECT_THROW(store.insert(rec_for(100, 2), ContextRole::kMaster),
               scale::CheckError);
}

TEST(ContextStore, EraseUnknownRejected) {
  UeContextStore store;
  EXPECT_THROW(store.erase(42), scale::CheckError);
}

TEST(ContextStore, SecondaryIndices) {
  UeContextStore store;
  auto rec = rec_for(100, 777);
  rec.mme_teid = proto::Teid::make(2, 5);
  rec.mme_ue_id = proto::MmeUeId::make(2, 9);
  auto& ctx = store.insert(rec, ContextRole::kMaster);

  EXPECT_EQ(store.find_by_imsi(777), &ctx);
  EXPECT_EQ(store.find_by_teid(proto::Teid::make(2, 5)), &ctx);
  EXPECT_EQ(store.find_by_mme_ue_id(proto::MmeUeId::make(2, 9)), &ctx);
  EXPECT_EQ(store.find_by_imsi(1), nullptr);

  // Re-index after the MME assigns new identifiers.
  ctx.rec.mme_teid = proto::Teid::make(3, 6);
  store.index_teid(ctx);
  EXPECT_EQ(store.find_by_teid(proto::Teid::make(3, 6)), &ctx);

  store.erase(ctx.key());
  EXPECT_EQ(store.find_by_imsi(777), nullptr);
  EXPECT_EQ(store.find_by_teid(proto::Teid::make(3, 6)), nullptr);
}

TEST(ContextStore, MemoryAccountingByRole) {
  UeContextStore store;
  store.insert(rec_for(1, 1, 1000), ContextRole::kMaster);
  store.insert(rec_for(2, 2, 2000), ContextRole::kReplica);
  store.insert(rec_for(3, 3, 4000), ContextRole::kExternal);

  EXPECT_EQ(store.total_bytes(), 7000u);
  EXPECT_EQ(store.bytes(ContextRole::kMaster), 1000u);
  EXPECT_EQ(store.bytes(ContextRole::kReplica), 2000u);
  EXPECT_EQ(store.bytes(ContextRole::kExternal), 4000u);
  EXPECT_EQ(store.count(ContextRole::kMaster), 1u);

  store.erase(proto::Guti{1, 1, 1, 2}.key());
  EXPECT_EQ(store.total_bytes(), 5000u);
  EXPECT_EQ(store.bytes(ContextRole::kReplica), 0u);
}

TEST(ContextStore, SetRoleMovesAccounting) {
  UeContextStore store;
  auto& ctx = store.insert(rec_for(1, 1, 1000), ContextRole::kMaster);
  store.set_role(ctx, ContextRole::kReplica);
  EXPECT_EQ(ctx.role, ContextRole::kReplica);
  EXPECT_EQ(store.bytes(ContextRole::kMaster), 0u);
  EXPECT_EQ(store.bytes(ContextRole::kReplica), 1000u);
  EXPECT_EQ(store.count(ContextRole::kReplica), 1u);
  // No-op role change keeps accounting intact.
  store.set_role(ctx, ContextRole::kReplica);
  EXPECT_EQ(store.bytes(ContextRole::kReplica), 1000u);
}

TEST(ContextStore, RekeyPreservesContextUnderNewGuti) {
  UeContextStore store;
  auto& ctx = store.insert(rec_for(100, 42), ContextRole::kMaster);
  const std::uint64_t old_key = ctx.key();
  const proto::Guti fresh{1, 1, 9, 555};
  auto& moved = store.rekey(old_key, fresh);
  EXPECT_EQ(&moved, &ctx);
  EXPECT_EQ(moved.rec.guti, fresh);
  EXPECT_EQ(store.find(old_key), nullptr);
  EXPECT_EQ(store.find(fresh.key()), &moved);
  // IMSI index still resolves.
  EXPECT_EQ(store.find_by_imsi(42), &moved);
}

TEST(ContextStore, RekeyCollisionRejected) {
  UeContextStore store;
  store.insert(rec_for(1, 1), ContextRole::kMaster);
  auto& b = store.insert(rec_for(2, 2), ContextRole::kMaster);
  EXPECT_THROW(store.rekey(b.key(), proto::Guti{1, 1, 1, 1}),
               scale::CheckError);
}

TEST(ContextStore, ForEachAndKeysIf) {
  UeContextStore store;
  for (std::uint32_t i = 1; i <= 10; ++i)
    store.insert(rec_for(i, i), i % 2 ? ContextRole::kMaster
                                      : ContextRole::kReplica);
  std::size_t visited = 0;
  store.for_each([&](UeContext&) { ++visited; });
  EXPECT_EQ(visited, 10u);
  const auto masters = store.keys_if(
      [](const UeContext& c) { return c.role == ContextRole::kMaster; });
  EXPECT_EQ(masters.size(), 5u);
}

}  // namespace
}  // namespace scale::epc

#include <gtest/gtest.h>

#include "common/check.h"

#include <string>

#include "hash/md5.h"

namespace scale::hash {
namespace {

// RFC 1321 appendix A.5 test suite.
TEST(Md5, Rfc1321Vectors) {
  EXPECT_EQ(Md5::hex(Md5::digest("")), "d41d8cd98f00b204e9800998ecf8427e");
  EXPECT_EQ(Md5::hex(Md5::digest("a")), "0cc175b9c0f1b6a831c399e269772661");
  EXPECT_EQ(Md5::hex(Md5::digest("abc")), "900150983cd24fb0d6963f7d28e17f72");
  EXPECT_EQ(Md5::hex(Md5::digest("message digest")),
            "f96b697d7cb7938d525a2f31aaf161d0");
  EXPECT_EQ(Md5::hex(Md5::digest("abcdefghijklmnopqrstuvwxyz")),
            "c3fcd3d76192e4007dfb496cca67e13b");
  EXPECT_EQ(Md5::hex(Md5::digest("ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnop"
                                 "qrstuvwxyz0123456789")),
            "d174ab98d277d9f5a5611c2c9f419d9f");
  EXPECT_EQ(Md5::hex(Md5::digest(
                "123456789012345678901234567890123456789012345678901234567890"
                "12345678901234567890")),
            "57edf4a22be3c955ac49da2e2107b67a");
}

TEST(Md5, IncrementalMatchesOneShot) {
  const std::string data(1000, 'x');
  Md5 h;
  for (std::size_t i = 0; i < data.size(); i += 7)
    h.update(std::string_view(data).substr(i, 7));
  EXPECT_EQ(Md5::hex(h.finish()), Md5::hex(Md5::digest(data)));
}

TEST(Md5, BlockBoundaryLengths) {
  // Lengths around the 64-byte block and 56-byte padding edges.
  for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const std::string data(len, 'q');
    Md5 incremental;
    incremental.update(std::string_view(data).substr(0, len / 2));
    incremental.update(std::string_view(data).substr(len / 2));
    EXPECT_EQ(Md5::hex(incremental.finish()), Md5::hex(Md5::digest(data)))
        << "length " << len;
  }
}

TEST(Md5, FinishTwiceRejected) {
  Md5 h;
  h.update("abc");
  h.finish();
  EXPECT_THROW(h.finish(), scale::CheckError);
}

TEST(Md5, UpdateAfterFinishRejected) {
  Md5 h;
  h.finish();
  EXPECT_THROW(h.update("x"), scale::CheckError);
}

TEST(Md5, ToU64IsLittleEndianPrefix) {
  const auto d = Md5::digest("abc");
  std::uint64_t expected = 0;
  for (int i = 0; i < 8; ++i)
    expected |= static_cast<std::uint64_t>(d[static_cast<std::size_t>(i)])
                << (8 * i);
  EXPECT_EQ(Md5::to_u64(d), expected);
}

TEST(Md5, KeyHashingIsDeterministicAndSpread) {
  EXPECT_EQ(md5_u64(12345), md5_u64(12345));
  EXPECT_NE(md5_u64(12345), md5_u64(12346));
  // Crude avalanche check: consecutive keys differ in many bits.
  int total_bits = 0;
  for (std::uint64_t k = 0; k < 64; ++k)
    total_bits += __builtin_popcountll(md5_u64(k) ^ md5_u64(k + 1));
  EXPECT_GT(total_bits / 64, 20);
}

TEST(Fnv1a, KnownValues) {
  // FNV-1a 64-bit of empty string is the offset basis.
  EXPECT_EQ(fnv1a(""), 0xCBF29CE484222325ull);
  EXPECT_EQ(fnv1a("a"), 0xAF63DC4C8601EC8Cull);
}

TEST(Fnv1a, U64Deterministic) {
  EXPECT_EQ(fnv1a_u64(42), fnv1a_u64(42));
  EXPECT_NE(fnv1a_u64(42), fnv1a_u64(43));
}

}  // namespace
}  // namespace scale::hash

#include <gtest/gtest.h>

#include "mme/pool.h"
#include "testbed/testbed.h"
#include "workload/arrivals.h"
#include "workload/population.h"

namespace scale {
namespace {

using testbed::Testbed;

struct World {
  Testbed tb;
  Testbed::Site* site;
  std::unique_ptr<mme::MmePool> pool;

  World() {
    site = &tb.add_site(2);
    mme::MmePool::Config cfg;
    cfg.node_template.sgw = site->sgw->node();
    cfg.node_template.hss = tb.hss().node();
    cfg.initial_count = 2;
    pool = std::make_unique<mme::MmePool>(tb.fabric(), cfg);
    for (auto& enb : site->enbs) pool->connect_enb(*enb);
  }
};

TEST(Population, UniformAndBimodal) {
  const auto u = workload::uniform_access(10, 0.3);
  EXPECT_EQ(u.size(), 10u);
  for (double w : u) EXPECT_DOUBLE_EQ(w, 0.3);

  const auto b = workload::bimodal_access(10, 0.4, 0.05, 0.8);
  EXPECT_DOUBLE_EQ(b[0], 0.05);
  EXPECT_DOUBLE_EQ(b[3], 0.05);
  EXPECT_DOUBLE_EQ(b[4], 0.8);
  EXPECT_DOUBLE_EQ(b[9], 0.8);
}

TEST(Population, ZipfIsDecreasing) {
  const auto z = workload::zipf_access(20, 1.0, 0.9);
  EXPECT_DOUBLE_EQ(z[0], 0.9);
  for (std::size_t i = 1; i < z.size(); ++i) EXPECT_LT(z[i], z[i - 1]);
}

TEST(Population, RandomWithinBounds) {
  const auto r = workload::random_access(1000, 0.2, 0.6, 7);
  for (double w : r) {
    EXPECT_GE(w, 0.2);
    EXPECT_LE(w, 0.6);
  }
}

TEST(OpenLoopDriver, GeneratesApproximatelyPoissonRate) {
  World w;
  // 400 devices with the default 5 s Active window sustain ≈80 req/s.
  auto ues = w.tb.make_ues(*w.site, 400, {0.5});
  w.tb.register_all(*w.site, Duration::sec(3.0), Duration::sec(8.0));

  workload::OpenLoopDriver::Config cfg;
  cfg.rate_per_sec = 50.0;
  cfg.mix.service_request = 1.0;
  workload::OpenLoopDriver driver(w.tb.engine(), ues, cfg);
  const Time start = w.tb.engine().now();
  driver.start(start + Duration::sec(10.0));
  w.tb.run_for(Duration::sec(12.0));

  EXPECT_NEAR(static_cast<double>(driver.arrivals()), 500.0, 90.0);
  // With plenty of idle devices, nearly all arrivals issue.
  EXPECT_GT(driver.issued(), driver.arrivals() * 8 / 10);
  EXPECT_GT(w.tb.delays().total_count(), 100u);
}

TEST(OpenLoopDriver, HandoverMixRequiresTargets) {
  World w;
  auto ues = w.tb.make_ues(*w.site, 20, {0.5});
  w.tb.register_all(*w.site, Duration::sec(2.0), Duration::sec(2.0));
  // Devices still connected (inactivity is 5 s): handovers possible.
  workload::OpenLoopDriver::Config cfg;
  cfg.rate_per_sec = 50.0;
  cfg.mix = {.attach = 0, .service_request = 0, .tau = 0, .handover = 1.0,
             .detach = 0};
  workload::OpenLoopDriver driver(w.tb.engine(), ues, cfg);
  driver.set_handover_targets(w.site->enb_ptrs());
  driver.start(w.tb.engine().now() + Duration::sec(4.0));
  w.tb.run_for(Duration::sec(6.0));
  EXPECT_GT(driver.issued(), 20u);
  EXPECT_TRUE(w.tb.delays().has("handover"));
}

TEST(PeriodicDriver, EachDeviceReportsRoughlyPerPeriod) {
  World w;
  auto ues = w.tb.make_ues(*w.site, 20, {0.5});
  w.tb.register_all(*w.site, Duration::sec(2.0), Duration::sec(8.0));

  workload::PeriodicDriver::Config cfg;
  cfg.mean_period = Duration::sec(10.0);
  workload::PeriodicDriver driver(w.tb.engine(), ues, cfg);
  driver.start(w.tb.engine().now() + Duration::sec(40.0));
  w.tb.run_for(Duration::sec(45.0));
  // 20 devices * 40 s / 10 s ≈ 80 wake-ups.
  EXPECT_NEAR(static_cast<double>(driver.issued()), 80.0, 35.0);
}

TEST(MassAccessEvent, TriggersBurstWithinSpread) {
  World w;
  auto ues = w.tb.make_ues(*w.site, 100, {0.5});
  w.tb.register_all(*w.site, Duration::sec(3.0), Duration::sec(8.0));
  w.tb.delays().clear();

  workload::MassAccessEvent burst(w.tb.engine(), ues);
  const Time t0 = w.tb.engine().now();
  burst.schedule(t0 + Duration::sec(1.0), 80, Duration::ms(500.0));
  w.tb.run_for(Duration::sec(5.0));
  EXPECT_GE(burst.issued(), 75u);
  EXPECT_GE(w.tb.delays().bucket("service_request").count(), 60u);
}

}  // namespace
}  // namespace scale

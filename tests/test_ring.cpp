#include <gtest/gtest.h>

#include "common/check.h"

#include <map>
#include <set>

#include "hash/ring.h"

namespace scale::hash {
namespace {

ConsistentHashRing make_ring(unsigned tokens, std::initializer_list<RingNodeId> nodes) {
  ConsistentHashRing ring(ConsistentHashRing::Config{tokens, true});
  for (RingNodeId n : nodes) ring.add_node(n);
  return ring;
}

TEST(Ring, EmptyRingRejectsLookups) {
  ConsistentHashRing ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_THROW(ring.owner(1), scale::CheckError);
  EXPECT_THROW(ring.preference_list(1, 2), scale::CheckError);
}

TEST(Ring, AddRemoveMembership) {
  auto ring = make_ring(5, {1, 2, 3});
  EXPECT_EQ(ring.node_count(), 3u);
  EXPECT_EQ(ring.token_count(), 15u);
  EXPECT_TRUE(ring.contains(2));
  ring.remove_node(2);
  EXPECT_FALSE(ring.contains(2));
  EXPECT_EQ(ring.token_count(), 10u);
}

TEST(Ring, DuplicateAddRejected) {
  auto ring = make_ring(5, {1});
  EXPECT_THROW(ring.add_node(1), scale::CheckError);
}

TEST(Ring, RemoveUnknownRejected) {
  auto ring = make_ring(5, {1});
  EXPECT_THROW(ring.remove_node(9), scale::CheckError);
}

TEST(Ring, OwnerIsDeterministic) {
  auto a = make_ring(5, {1, 2, 3, 4});
  auto b = make_ring(5, {4, 3, 2, 1});  // insertion order must not matter
  for (std::uint64_t key = 0; key < 2000; ++key)
    EXPECT_EQ(a.owner(key), b.owner(key));
}

TEST(Ring, PreferenceListDistinctAndStartsAtOwner) {
  auto ring = make_ring(5, {10, 20, 30, 40, 50});
  for (std::uint64_t key = 0; key < 500; ++key) {
    const auto prefs = ring.preference_list(key, 3);
    ASSERT_EQ(prefs.size(), 3u);
    EXPECT_EQ(prefs[0], ring.owner(key));
    std::set<RingNodeId> uniq(prefs.begin(), prefs.end());
    EXPECT_EQ(uniq.size(), 3u);
  }
}

TEST(Ring, PreferenceListCappedByNodeCount) {
  auto ring = make_ring(5, {1, 2});
  const auto prefs = ring.preference_list(7, 10);
  EXPECT_EQ(prefs.size(), 2u);
}

TEST(Ring, ReplicaOfSingleNodeIsNull) {
  auto ring = make_ring(5, {1});
  EXPECT_FALSE(ring.replica_of(123).has_value());
}

TEST(Ring, ReplicaDiffersFromOwner) {
  auto ring = make_ring(5, {1, 2, 3});
  for (std::uint64_t key = 0; key < 300; ++key) {
    const auto rep = ring.replica_of(key);
    ASSERT_TRUE(rep.has_value());
    EXPECT_NE(*rep, ring.owner(key));
  }
}

TEST(Ring, NodeRemovalOnlyMovesItsKeys) {
  // The consistent-hashing contract (§4.3.1): removing a VM only remaps
  // the keys it owned; every other key keeps its owner.
  auto ring = make_ring(5, {1, 2, 3, 4, 5, 6});
  std::map<std::uint64_t, RingNodeId> before;
  for (std::uint64_t key = 0; key < 5000; ++key) before[key] = ring.owner(key);
  ring.remove_node(3);
  for (const auto& [key, owner] : before) {
    if (owner == 3) {
      EXPECT_NE(ring.owner(key), 3u);
    } else {
      EXPECT_EQ(ring.owner(key), owner) << "key " << key << " moved needlessly";
    }
  }
}

TEST(Ring, NodeAdditionOnlyStealsKeys) {
  auto ring = make_ring(5, {1, 2, 3, 4, 5});
  std::map<std::uint64_t, RingNodeId> before;
  for (std::uint64_t key = 0; key < 5000; ++key) before[key] = ring.owner(key);
  ring.add_node(99);
  std::size_t moved = 0;
  for (const auto& [key, owner] : before) {
    const RingNodeId now = ring.owner(key);
    if (now != owner) {
      EXPECT_EQ(now, 99u) << "key moved to a node other than the new one";
      ++moved;
    }
  }
  // New node takes roughly 1/6 of the space.
  EXPECT_GT(moved, 5000 / 6 / 3);
  EXPECT_LT(moved, 5000 / 2);
}

TEST(Ring, TokensImproveBalanceOverTokenless) {
  // Fig. 10(a)'s "basic consistent hashing" baseline: 1 token per node
  // yields much worse balance than 5+ tokens.
  auto balance_spread = [](unsigned tokens) {
    ConsistentHashRing ring(ConsistentHashRing::Config{tokens, true});
    for (RingNodeId n = 1; n <= 10; ++n) ring.add_node(n);
    std::map<RingNodeId, std::size_t> counts;
    for (std::uint64_t key = 0; key < 40000; ++key) ++counts[ring.owner(key)];
    std::size_t min_c = SIZE_MAX, max_c = 0;
    for (const auto& [n, c] : counts) {
      min_c = std::min(min_c, c);
      max_c = std::max(max_c, c);
    }
    return static_cast<double>(max_c) / static_cast<double>(std::max<std::size_t>(1, min_c));
  };
  EXPECT_LT(balance_spread(32), balance_spread(1));
}

TEST(Ring, OwnershipFractionsSumToOne) {
  auto ring = make_ring(7, {1, 2, 3, 4});
  double total = 0.0;
  for (RingNodeId n : ring.nodes()) total += ring.ownership_fraction(n);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Ring, OwnershipFractionMatchesEmpiricalShare) {
  auto ring = make_ring(16, {1, 2, 3});
  std::map<RingNodeId, std::size_t> counts;
  const std::uint64_t n_keys = 60000;
  for (std::uint64_t key = 0; key < n_keys; ++key) ++counts[ring.owner(key)];
  for (RingNodeId n : ring.nodes()) {
    const double empirical =
        static_cast<double>(counts[n]) / static_cast<double>(n_keys);
    EXPECT_NEAR(ring.ownership_fraction(n), empirical, 0.02);
  }
}

TEST(Ring, FnvModeWorks) {
  ConsistentHashRing ring(ConsistentHashRing::Config{5, false});
  ring.add_node(1);
  ring.add_node(2);
  EXPECT_NO_THROW(ring.owner(42));
  EXPECT_EQ(ring.preference_list(42, 2).size(), 2u);
}

class RingTokenSweep : public ::testing::TestWithParam<unsigned> {};

// Property sweep: for any token count, preference lists are duplicate-free
// prefixes of ring order and owners are stable across rebuilds.
TEST_P(RingTokenSweep, PreferenceListInvariants) {
  const unsigned tokens = GetParam();
  ConsistentHashRing ring(ConsistentHashRing::Config{tokens, true});
  for (RingNodeId n = 1; n <= 8; ++n) ring.add_node(n);
  for (std::uint64_t key = 1; key < 400; key += 7) {
    const auto prefs = ring.preference_list(key, 4);
    ASSERT_EQ(prefs.size(), 4u);
    std::set<RingNodeId> uniq(prefs.begin(), prefs.end());
    EXPECT_EQ(uniq.size(), prefs.size());
    EXPECT_EQ(prefs[0], ring.owner(key));
  }
}

INSTANTIATE_TEST_SUITE_P(TokenCounts, RingTokenSweep,
                         ::testing::Values(1u, 2u, 5u, 16u, 64u));

}  // namespace
}  // namespace scale::hash

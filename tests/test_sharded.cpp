// ShardedSim (DESIGN.md §10): cross-shard mailbox ordering, the conservative
// window protocol, and cross-thread-count determinism on multi-DC worlds —
// clean and under chaos (stochastic faults + a scripted DC partition). The
// single-DC golden-digest gate lives in test_determinism.cpp
// (Determinism.ShardedFingerprint).
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "core/cluster.h"
#include "epc/fabric.h"
#include "proto/s11.h"
#include "sim/engine.h"
#include "sim/mailbox.h"
#include "sim/network.h"
#include "sim/shard.h"
#include "testbed/testbed.h"

namespace scale {
namespace {

using testbed::Testbed;

proto::Pdu ping(proto::Imsi imsi) {
  proto::CreateSessionRequest req;
  req.imsi = imsi;
  return proto::make_pdu(req);
}

proto::Imsi imsi_of(const proto::Pdu& pdu) {
  const auto* s11 = std::get_if<proto::S11Message>(&pdu);
  if (s11 == nullptr) return 0;
  const auto* req = std::get_if<proto::CreateSessionRequest>(s11);
  return req == nullptr ? 0 : req->imsi;
}

// ------------------------------------------------------------- mailbox order

TEST(ShardedSim, RouterDrainsAscendingSourceShardFifoWithin) {
  // The (shard, seq) total order the protocol pins: drain_into visits
  // source shards ascending, and each mailbox preserves append order —
  // regardless of the (scrambled) order the pushes arrived in.
  sim::ShardRouter router;
  router.add_shard();
  router.add_shard();  // shards {0, 1, 2}
  auto msg = [](std::uint32_t src, std::uint64_t seq) {
    return sim::CrossShardMsg{1000, sim::ShardRouter::first_node_id(src),
                              sim::ShardRouter::first_node_id(0),
                              ping(src * 100 + seq)};
  };
  // Push in an order that disagrees with both shard id and seq.
  router.outbox(2, 0).push(msg(2, 0));
  router.outbox(1, 0).push(msg(1, 0));
  router.outbox(2, 0).push(msg(2, 1));
  router.outbox(1, 0).push(msg(1, 1));

  std::vector<proto::Imsi> order;
  router.drain_into(0, [&](sim::CrossShardMsg&& m) {
    order.push_back(imsi_of(m.pdu));
  });
  EXPECT_EQ(order, (std::vector<proto::Imsi>{100, 101, 200, 201}));
  EXPECT_TRUE(router.all_empty());
}

/// Records the arrival order of every PDU delivered to it.
struct Recorder final : epc::Endpoint {
  sim::NodeId self = 0;
  std::vector<proto::Imsi> got;
  void receive(sim::NodeId, const proto::Pdu& pdu) override {
    got.push_back(imsi_of(pdu));
  }
};

TEST(ShardedSim, EqualTimestampCrossShardEventsFireInShardSeqOrder) {
  // Three shards, equal 1 ms DC latencies. Shards 1 and 2 each send two
  // PDUs to shard 0 with identical arrival timestamps; the pushes happen in
  // scrambled order. Delivery must follow (source shard asc, seq) at every
  // worker count — the engine breaks the timestamp tie by insertion order,
  // and insertion order is the drain order.
  for (const unsigned threads : {1u, 3u}) {
    sim::Network net;
    net.set_shard_count(3);
    for (std::uint32_t a = 0; a < 3; ++a)
      for (std::uint32_t b = a + 1; b < 3; ++b)
        net.set_dc_latency(a, b, Duration::ms(1.0));

    sim::ShardRouter router;
    router.add_shard();
    router.add_shard();
    std::vector<std::unique_ptr<sim::Engine>> engines;
    std::vector<std::unique_ptr<epc::Fabric>> fabrics;
    std::vector<Recorder> eps(3);
    for (std::uint32_t s = 0; s < 3; ++s) {
      engines.push_back(std::make_unique<sim::Engine>());
      fabrics.push_back(std::make_unique<epc::Fabric>(*engines[s], net));
      fabrics[s]->attach_shard(router, s);
      eps[s].self = fabrics[s]->add_endpoint(&eps[s]);
      net.set_node_dc(eps[s].self, s);
    }
    // Scrambled send order: 2 before 1, second messages interleaved.
    fabrics[2]->send(eps[2].self, eps[0].self, ping(200));
    fabrics[1]->send(eps[1].self, eps[0].self, ping(100));
    fabrics[2]->send(eps[2].self, eps[0].self, ping(201));
    fabrics[1]->send(eps[1].self, eps[0].self, ping(101));

    std::vector<sim::ShardedSim::Shard> shards;
    for (std::uint32_t s = 0; s < 3; ++s)
      shards.push_back({engines[s].get(),
                        [f = fabrics[s].get()](sim::CrossShardMsg&& m) {
                          f->accept_arrival(std::move(m));
                        }});
    sim::ShardedSim::Config cfg;
    cfg.threads = threads;
    cfg.lookahead = net.min_cross_dc_latency();
    sim::ShardedSim sharded(router, std::move(shards), cfg);
    sharded.run_until(Time::from_us(2000));

    EXPECT_EQ(eps[0].got, (std::vector<proto::Imsi>{100, 101, 200, 201}))
        << "threads=" << threads;
    EXPECT_EQ(sharded.messages_relayed(), 4u);
  }
}

// ----------------------------------------------- multi-DC determinism gates

struct WorldFingerprint {
  std::string trajectory;
  sim::FaultCounters faults;
};

/// Two-DC SCALE world: one site + one small cluster per DC, reliable
/// transport. DC 1's registration window is positioned so, under chaos, a
/// scripted DC0<->DC1 partition cuts its attaches off from the (DC-0) HSS
/// mid-flight, on top of global stochastic loss. Everything observable is
/// folded into a string so runs can be compared byte-for-byte.
WorldFingerprint run_two_dc_world(unsigned threads, bool chaos) {
  Testbed::Config tcfg;
  tcfg.seed = 99;
  tcfg.threads = threads;
  tcfg.transport.reliable = true;
  tcfg.ue_guard_timeout = Duration::sec(10.0);
  Testbed tb(tcfg);
  constexpr std::uint32_t kDcs = 2;

  std::vector<Testbed::Site*> sites;
  for (std::uint32_t dc = 0; dc < kDcs; ++dc)
    sites.push_back(&tb.add_site(1, static_cast<proto::Tac>(dc + 1),
                                 Duration::ms(1.0), dc));
  tb.network().set_dc_latency(0, 1, Duration::ms(15.0));
  if (chaos) {
    sim::LinkFaults f;
    f.drop_prob = 0.03;
    f.dup_prob = 0.01;
    f.reorder_prob = 0.01;
    tb.network().set_global_faults(f);
    // DC 1 registers over [11s, 41s); the partition window sits inside it.
    tb.network().schedule_partition(0, 1, Time::from_us(14'000'000),
                                    Time::from_us(16'000'000));
  }

  std::vector<std::unique_ptr<core::ScaleCluster>> clusters;
  for (std::uint32_t dc = 0; dc < kDcs; ++dc) {
    core::ScaleCluster::Config cfg;
    cfg.home_dc = dc;
    cfg.mme_group = static_cast<std::uint16_t>(100 + dc);
    cfg.initial_mmps = 2;
    cfg.first_vm_code = static_cast<std::uint8_t>(1 + dc * 50);
    cfg.provisioner.min_vms = 2;
    cfg.provisioner.max_vms = 2;
    cfg.seed = 7 + dc;
    clusters.push_back(std::make_unique<core::ScaleCluster>(
        tb.fabric_for_dc(dc), sites[dc]->sgw->node(), tb.hss().node(), cfg));
    clusters[dc]->connect_enb(*sites[dc]->enbs[0]);
    tb.assign_dc(clusters[dc]->mlb().node(), dc);
    for (auto& mmp : clusters[dc]->mmps()) tb.assign_dc(mmp->node(), dc);
  }
  for (auto& c : clusters) c->start();

  for (std::uint32_t dc = 0; dc < kDcs; ++dc)
    tb.make_ues(*sites[dc], 15, {0.9, 0.4});
  tb.register_all(*sites[0], Duration::sec(3.0), Duration::sec(8.0));
  tb.register_all(*sites[1], Duration::sec(10.0), Duration::sec(20.0));
  tb.run_for(Duration::sec(5.0));  // settle reattach stragglers

  std::ostringstream os;
  os << tb.network().messages_sent() << '|' << tb.network().bytes_sent()
     << '|' << tb.failures();
  for (std::uint32_t dc = 0; dc < kDcs; ++dc) {
    os << '|' << tb.engine_for_dc(dc).events_processed();
    std::size_t registered = 0;
    for (const auto& ue : sites[dc]->ues)
      if (ue->registered()) ++registered;
    os << ':' << registered;
    for (auto& mmp : clusters[dc]->mmps())
      os << ':' << mmp->requests_handled() << ',' << mmp->app().store().size();
  }
  const sim::FaultCounters fc = tb.network().fault_counters();
  os << '|' << fc.random_drops << ':' << fc.partition_drops << ':'
     << fc.duplicates << ':' << fc.reorders;
  const auto merged = tb.merged_delays().merged();
  os << '|' << merged.count();
  if (merged.count() > 0)
    os << ':' << merged.percentile(0.5) << ':' << merged.percentile(0.99);
  return {os.str(), fc};
}

TEST(Determinism, MultiDcShardedIdenticalAcrossThreadCounts) {
  const WorldFingerprint t1 = run_two_dc_world(1, /*chaos=*/false);
  const WorldFingerprint t2 = run_two_dc_world(2, /*chaos=*/false);
  const WorldFingerprint t4 = run_two_dc_world(4, /*chaos=*/false);
  EXPECT_EQ(t1.trajectory, t2.trajectory);
  EXPECT_EQ(t1.trajectory, t4.trajectory);
  EXPECT_EQ(t1.faults.total_drops(), 0u);
}

TEST(Chaos, PartitionRunByteIdenticalAcrossThreadCounts) {
  // The PR-1 chaos recipe (stochastic loss + scripted partition) on a
  // sharded world: the fault draws come from per-shard streams and the
  // scripted windows from topology, so the whole trajectory — drops,
  // retransmissions, reattaches — must not depend on the worker count.
  const WorldFingerprint t1 = run_two_dc_world(1, /*chaos=*/true);
  const WorldFingerprint t2 = run_two_dc_world(2, /*chaos=*/true);
  const WorldFingerprint t4 = run_two_dc_world(4, /*chaos=*/true);
  EXPECT_EQ(t1.trajectory, t2.trajectory);
  EXPECT_EQ(t1.trajectory, t4.trajectory);
  // Non-vacuous: the partition and the stochastic faults actually fired.
  EXPECT_GT(t1.faults.partition_drops, 0u);
  EXPECT_GT(t1.faults.random_drops, 0u);
}

}  // namespace
}  // namespace scale

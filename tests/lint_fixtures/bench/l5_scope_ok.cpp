// Identical shape to src/epc/l5_bad.cpp, but under bench/ — outside rule
// L5's hot-path directory set, so it must produce zero findings.
#include <functional>

namespace fixture {

void run_bench(int n, std::function<void()> body) {
  for (int i = 0; i < n; ++i) body();
}

}  // namespace fixture

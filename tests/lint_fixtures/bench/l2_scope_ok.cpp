// L2 scope fixture: the same unordered iteration as l2_bad.cpp, but under
// bench/ — outside the determinism-critical directories, so zero findings
// (benchmarks may aggregate in hash order; they report, they don't replay).
#include <unordered_map>

struct BenchAgg {
  std::unordered_map<int, double> samples_;

  double sum() const {
    double s = 0.0;
    for (const auto& [k, v] : samples_) s += v;
    return s;
  }
};

// Rule L7 is scoped to src/ — the same back-edges that fail in
// src/epc/l7_bad.cpp are fine under bench/ (drivers, tests and tools may
// reach into any layer). 0 findings expected in this file.
#include "core/mmp.h"
#include "mme/cluster_vm.h"

int main() { return 0; }

// L3 negative fixture: properly attributed decoders, plus names the rule
// must leave alone. Zero findings.
#pragma once

struct ByteReader;

struct FrameB {
  [[nodiscard]] static FrameB decode(ByteReader& r);
};

[[nodiscard]] int parse_header2(ByteReader& r);

[[nodiscard]] bool try_take2(ByteReader& r);

void encode_frame(ByteReader& r);  // encoder: not a decode/parse/try_ name

int retry_count();  // "try" inside a word is not try_*

// L3 positive fixture: decode/parse/try_ declarations missing [[nodiscard]]
// in proto scope. Exactly 3 [L3] findings — the call site at the bottom must
// NOT be flagged (it is a use, not a declaration).
#pragma once

struct ByteReader;

struct FrameA {
  static FrameA decode(ByteReader& r);  // finding 1
};

int parse_header(ByteReader& r);  // finding 2

bool try_take(ByteReader& r);  // finding 3

inline int consume(ByteReader& r) {
  return parse_header(r);  // call, not a declaration: no finding
}

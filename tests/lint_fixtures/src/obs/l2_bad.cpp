// L2 positive fixture: src/obs joined the determinism-critical set when the
// observability layer landed (metric enumeration feeds byte-identical JSON).
// Exactly 2 [L2] findings.
#include <string>
#include <unordered_map>
#include <unordered_set>

struct Exporter {
  std::unordered_map<std::string, double> gauges_;
  std::unordered_set<std::string> names_;

  double total() const {
    double s = 0.0;
    for (const auto& [k, v] : gauges_) s += v;  // finding 1: range-for
    return s;
  }

  std::string any_name() const { return *names_.begin(); }  // finding 2
};

// Rule L7 fixtures — 2 findings expected in this file.
//
// epc ranks below mme and core in the declared DAG (DESIGN.md §6), so both
// includes are back-edges; the sim and common includes are legal.
#include "core/mmp.h"        // finding 1: core ranks above epc
#include "mme/cluster_vm.h"  // finding 2: mme ranks above epc
#include "sim/engine.h"      // legal: sim ranks below epc
#include "common/time.h"     // legal: common is the bottom layer

namespace scale::epc {

inline int noop() { return 0; }

}  // namespace scale::epc

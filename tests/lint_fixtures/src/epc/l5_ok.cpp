// L5 negative fixture: every way to hold or accept a callable that does NOT
// copy per call — plus the waiver contract. Expected findings: 0.
#include <functional>
#include <vector>

namespace fixture {

using Sink = std::function<void(int)>;  // alias, not a parameter

class Clean {
 public:
  void set_sink(const std::function<void(int)>& sink);  // by const&
  void set_once(std::function<void(int)>&& sink);       // by rvalue ref
  void set_many(std::vector<std::function<void()>> v);  // function is a
                                                        // template argument
  // lint: by-value-ok
  void legacy(std::function<void()> cb);  // waived (setup-time path)

  template <typename F>
  void run(int n, F&& body);  // templated — the preferred spelling

 private:
  std::function<void(int)> sink_;  // member storage is fine
};

}  // namespace fixture

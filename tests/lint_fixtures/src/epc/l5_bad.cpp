// L5 positive fixture: by-value std::function parameters in a hot-path dir.
// Each copy of the callable may heap-allocate; the rule wants const&, &&, or
// a template. Expected findings: 2.
#include <functional>

namespace fixture {

class Dispatcher {
 public:
  void set_sink(std::function<void(int)> sink);  // L5: declaration

  void run(int n, std::function<void()> body) {  // L5: inline definition
    for (int i = 0; i < n; ++i) body();
  }
};

}  // namespace fixture

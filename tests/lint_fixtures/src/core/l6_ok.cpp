// Rule L6 negative fixtures — 0 findings expected in this file.
//
// Immutable globals are not audited (nothing can race on them), and both
// waiver kinds — shard-local with a rationale, shard-shared with a reason —
// are accepted on the declaration line or in the comment block above it.
namespace scale::core {

constexpr int kMaxShards = 64;      // constexpr: immutable, not audited
const char* const kName = "shard";  // const: immutable, not audited

// lint: shard-shared(written once by the driver before any shard starts)
int g_config_epoch = 0;

class Pool {
 public:
  static Pool& local() {
    // lint: shard-local — thread_local: one pool per worker thread, so
    // pooled storage never crosses a shard boundary.
    static thread_local Pool pool;
    return pool;
  }
};

inline int ticket() {
  static int next = 0;  // lint: shard-local — driver-thread-only counter
  return ++next;
}

}  // namespace scale::core

// Rule L8 fixtures — 4 findings expected in this file (one per sub-check).
#include <mutex>

namespace scale::core {

class BadAnnotations {
 public:
  void put(int v);

 private:
  // finding (L8d): no SCALE_* annotation anywhere references this mutex,
  // so whatever it guards is guarded by convention only.
  std::mutex lonely_mu_;

  // finding (L8a): raw clang attribute spelling instead of the SCALE_ macro.
  int raw_ __attribute__((guarded_by(lonely_mu_)));

  // findings (L8b + L8c): a SCALE_ macro used without
  // "common/thread_annotations.h" in the include closure, guarding a
  // capability no declaration in this file introduces.
  int phantom_ SCALE_GUARDED_BY(ghost_mu_);
};

}  // namespace scale::core

// Rule L7 negative fixture — 0 findings expected in this file.
//
// core is the topmost single layer: it may include every layer below it,
// mme included (core::MmpNode derives from mme::ClusterVm in the real
// tree — that edge is why mme ranks below core in the declared DAG).
#include "mme/cluster_vm.h"
#include "epc/fabric.h"
#include "sim/engine.h"
#include "obs/trace.h"
#include "proto/s1ap.h"
#include "hash/ring.h"
#include "common/time.h"

namespace scale::core {

inline int noop() { return 0; }

}  // namespace scale::core

// L2 negative fixture: sanctioned unordered-container access patterns in
// src/core, mirroring the MLB's backoff/load maps. Zero findings.
#include <unordered_map>

struct PressureView {
  std::unordered_map<int, long> shed_until_;

  bool any_active(long now) const {
    // lint: order-independent — existence check, no per-visit side effects.
    for (const auto& [node, until] : shed_until_)
      if (now < until) return true;
    return false;
  }

  long lookup(int node) const {
    const auto it = shed_until_.find(node);  // point lookup: always fine
    return it == shed_until_.end() ? 0 : it->second;
  }
};

// Rule L8 negative fixture — 0 findings expected in this file.
//
// The contract satisfied end to end: macros reach the canonical header
// through the include closure, every guard names a capability declared in
// this file, and the mutex is referenced by at least one annotation.
#include "common/thread_annotations.h"

namespace scale::core {

class GuardedCounter {
 public:
  void bump() SCALE_REQUIRES(mu_) { ++count_; }
  void lock() SCALE_ACQUIRE(mu_) { mu_.lock(); }
  void unlock() SCALE_RELEASE(mu_) { mu_.unlock(); }

 private:
  common::Mutex mu_;
  int count_ SCALE_GUARDED_BY(mu_) = 0;
};

}  // namespace scale::core

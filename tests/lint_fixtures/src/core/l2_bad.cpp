// L2 positive fixture: unannotated iteration over unordered containers in
// src/core (governor/MLB state lives here). Exactly 2 [L2] findings.
#include <unordered_map>
#include <unordered_set>

struct GovernorState {
  std::unordered_map<int, double> loads_;
  std::unordered_set<int> backing_off_;

  double hottest() const {
    double h = 0.0;
    for (const auto& [node, load] : loads_)  // finding 1: range-for
      if (load > h) h = load;
    return h;
  }

  int any_backoff() const {
    return *backing_off_.begin();  // finding 2: iterator walk
  }
};

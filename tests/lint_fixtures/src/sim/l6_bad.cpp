// Rule L6 fixtures — 5 findings expected in this file.
//
// One of each flavor of mutable global the indexer surfaces: namespace
// scope, class-static member, function-local static, unannotated
// thread_local, and a shard-shared waiver with an empty reason (a waiver
// that explains nothing is itself a finding).
namespace scale::sim {

int g_event_count = 0;  // finding 1: namespace-scope mutable variable

class Registry {
 public:
  static int next_id();

 private:
  inline static int live_ = 0;  // finding 2: mutable class-static member
};

inline int bump() {
  static int calls = 0;                  // finding 3: function-local static
  static thread_local int scratch = 0;   // finding 4: unannotated thread_local
  return ++calls + scratch;
}

// lint: shard-shared()
int g_flag = 0;  // finding 5: shard-shared waiver without a reason

}  // namespace scale::sim

// L2 negative fixture: the sanctioned ways to touch unordered containers in
// a determinism-critical directory. Zero findings.
#include <map>
#include <unordered_map>

struct Counters {
  std::unordered_map<int, long> counts_;
  std::map<int, long> ordered_;

  long total() const {
    long t = 0;
    // lint: order-independent — commutative sum, no events emitted per visit.
    for (const auto& [k, v] : counts_) t += v;
    for (const auto& [k, v] : ordered_) t += v;  // ordered map: always fine
    const auto it = counts_.find(3);             // point lookup: always fine
    return t + (it == counts_.end() ? 0 : it->second);
  }
};

// L2 positive fixture: unannotated iteration over unordered containers in a
// determinism-critical directory. Exactly 2 [L2] findings.
#include <unordered_map>
#include <unordered_set>

struct Telemetry {
  std::unordered_map<int, double> samples_;
  std::unordered_set<int> ids_;

  double sum() const {
    double s = 0.0;
    for (const auto& [k, v] : samples_) s += v;  // finding 1: range-for
    return s;
  }

  int first() const { return *ids_.begin(); }  // finding 2: iterator walk
};

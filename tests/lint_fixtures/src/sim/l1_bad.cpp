// L1 positive fixture: every classic nondeterminism source, one per site.
// test_lint.cpp asserts exactly 6 [L1] findings in this file.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>

long wall_clock() { return time(nullptr); }  // finding 1: wall-clock read

int libc_rand() { return std::rand(); }  // finding 2: unseedable libc PRNG

void libc_seed() { srand(42); }  // finding 3: process-global seeding

unsigned entropy() {
  std::random_device rd;  // finding 4: entropy can never replay
  return rd();
}

void default_seeded() {
  std::mt19937 gen;  // finding 5: seed differs across stdlib versions
  (void)gen;
}

double chrono_clock() {
  const auto now = std::chrono::steady_clock::now();  // finding 6
  return std::chrono::duration<double>(now.time_since_epoch()).count();
}

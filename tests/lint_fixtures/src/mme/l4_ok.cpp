// L4 negative fixture: the allowed spellings. Zero findings.
#include <memory>

// TODO(alex): profile this path once the worker pool lands.
struct Gadget {
  Gadget() = default;
  Gadget(const Gadget&) = delete;  // deleted function, not a deallocation
  Gadget& operator=(const Gadget&) = delete;
};

std::unique_ptr<Gadget> make_gadget() { return std::make_unique<Gadget>(); }

const char* slogan() { return "brand new delete-free code"; }  // string only

// L4 positive fixture: ownership and hygiene violations. Exactly 3 [L4]
// findings.
struct Widget {
  int x = 0;
};

// TODO: tighten this up — finding 1 (no owner tag)

Widget* make_widget() {
  return new Widget();  // finding 2: naked new
}

void destroy_widget(Widget* w) {
  delete w;  // finding 3: naked delete
}

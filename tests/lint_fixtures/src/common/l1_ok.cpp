// L1 negative fixture: deterministic idioms that must NOT be flagged —
// explicit-seed PRNGs, identifiers that merely contain "time"/"rand", and
// mentions of the banned names inside comments and string literals.
#include <cstdint>
#include <string>

struct Rng {
  explicit Rng(std::uint64_t seed) : s_(seed) {}
  std::uint64_t next() { return s_ += 0x9E3779B97F4A7C15ull; }
  std::uint64_t s_;
};

std::uint64_t draw(std::uint64_t seed) { return Rng(seed).next(); }

std::uint64_t run_time(std::uint64_t t) { return t; }  // name contains "time"
std::uint64_t uptime() { return run_time(7); }

// A comment naming std::rand or system_clock is documentation, not use.
std::string docs() { return "never call std::rand or time() in sim code"; }

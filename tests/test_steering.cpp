// SteeringPolicy unit behaviours (DESIGN.md §11): MmpLoadView sentinel
// semantics, golden pick sequences for every policy at fixed inputs, the
// outlier-ejection state machine, per-policy cluster determinism across
// runs and ShardedSim worker counts, and the ablation bench's
// byte-identity gate.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/cluster.h"
#include "core/steering.h"
#include "obs/registry.h"
#include "testbed/testbed.h"
#include "workload/arrivals.h"

namespace scale {
namespace {

using core::DeterministicAperture;
using core::kNoLoadReport;
using core::MmpLoadView;
using core::OutlierEjectorConfig;
using core::PassiveOutlierEjector;
using core::PowerOfTwoChoices;
using core::RingLeastLoaded;
using core::SteeringContext;
using core::SteeringDecision;
using core::SteeringPolicyKind;
using core::SteerReason;
using testbed::Testbed;

Time at_sec(double s) { return Time::zero() + Duration::sec(s); }

/// A ring whose node set we control exactly (NodeIds sorted: 10 < 20 < ...).
hash::ConsistentHashRing make_ring(const std::vector<sim::NodeId>& nodes) {
  hash::ConsistentHashRing ring{hash::ConsistentHashRing::Config{}};
  for (const sim::NodeId n : nodes) ring.add_node(n);
  return ring;
}

SteeringDecision pick(core::SteeringPolicy& policy,
                      const hash::ConsistentHashRing& ring,
                      const MmpLoadView& view,
                      const std::vector<hash::RingNodeId>& prefs,
                      Time now, std::uint64_t key = 1) {
  const SteeringContext ctx{key, prefs, ring, view, now};
  return policy.pick(ctx);
}

// ------------------------------------------------------------ MmpLoadView

TEST(MmpLoadView, NeverReportedIsASentinelNotZero) {
  MmpLoadView view;
  EXPECT_FALSE(view.has_report(7));
  EXPECT_EQ(view.load_of(7), kNoLoadReport);
  EXPECT_EQ(view.report_age(7, at_sec(1.0)), Duration::max());
  // Steering comparisons are optimistic about unknowns (a fresh VM must
  // receive traffic immediately — the seed's defaulted-map behaviour)...
  EXPECT_EQ(view.effective_load(7), 0.0);

  view.on_report(7, 0.0, 0, at_sec(1.0));
  // ...but the accessor distinguishes "reported load 0" from "never heard".
  EXPECT_TRUE(view.has_report(7));
  EXPECT_EQ(view.load_of(7), 0.0);
  EXPECT_EQ(view.load_of(8), kNoLoadReport);
  EXPECT_EQ(view.report_age(7, at_sec(1.5)), Duration::ms(500.0));
}

TEST(MmpLoadView, EwmaAlphaOneKeepsRawReports) {
  MmpLoadView view;  // default alpha = 1.0, the seed behaviour
  view.on_report(1, 0.8, 0, at_sec(1.0));
  view.on_report(1, 0.2, 0, at_sec(2.0));
  EXPECT_DOUBLE_EQ(view.load_of(1), 0.2);
}

TEST(MmpLoadView, EwmaSmoothsWhenAlphaLowered) {
  MmpLoadView view{MmpLoadView::Config{0.5}};
  view.on_report(1, 1.0, 0, at_sec(1.0));  // first report seeds the average
  EXPECT_DOUBLE_EQ(view.load_of(1), 1.0);
  view.on_report(1, 0.0, 0, at_sec(2.0));
  EXPECT_DOUBLE_EQ(view.load_of(1), 0.5);
  view.on_report(1, 0.5, 0, at_sec(3.0));
  EXPECT_DOUBLE_EQ(view.load_of(1), 0.5);
}

TEST(MmpLoadView, BackoffAndPoolAggregates) {
  MmpLoadView view;
  view.on_report(1, 0.4, 0, at_sec(1.0));
  view.on_report(2, 1.2, 0, at_sec(1.0));
  view.on_reject(2, at_sec(3.0));

  EXPECT_TRUE(view.in_backoff(2, at_sec(2.0)));
  EXPECT_FALSE(view.in_backoff(2, at_sec(3.0)));  // window end is exclusive
  EXPECT_FALSE(view.in_backoff(1, at_sec(2.0)));
  EXPECT_TRUE(view.any_backoff(at_sec(2.0)));
  EXPECT_FALSE(view.any_backoff(at_sec(4.0)));

  EXPECT_TRUE(view.any_load_at_least(1.2));
  EXPECT_FALSE(view.any_load_at_least(1.3));
  EXPECT_DOUBLE_EQ(view.mean_load(), 0.8);
  EXPECT_EQ(view.reported_count(), 2u);
}

// --------------------------------------------------------- RingLeastLoaded

TEST(RingLeastLoaded, GoldenPickSequence) {
  const auto ring = make_ring({1, 2, 3});
  MmpLoadView view;
  RingLeastLoaded policy(3);
  const std::vector<hash::RingNodeId> prefs{1, 2, 3};
  const Time t = at_sec(1.0);

  // No reports: everything ties at optimistic 0 — first in list wins.
  auto d = pick(policy, ring, view, prefs, t);
  EXPECT_EQ(d.target, 1u);
  EXPECT_EQ(d.reason, SteerReason::kLeastLoaded);

  view.on_report(1, 0.5, 0, t);
  view.on_report(2, 0.1, 0, t);
  view.on_report(3, 0.7, 0, t);
  EXPECT_EQ(pick(policy, ring, view, prefs, t).target, 2u);

  // A candidate in a shed-backoff window loses to any candidate outside.
  view.on_reject(2, at_sec(5.0));
  EXPECT_EQ(pick(policy, ring, view, prefs, t).target, 1u);

  // All shed: least loaded among the shed class.
  view.on_reject(1, at_sec(5.0));
  view.on_reject(3, at_sec(5.0));
  EXPECT_EQ(pick(policy, ring, view, prefs, t).target, 2u);

  // Backoff expiry restores the load order.
  EXPECT_EQ(pick(policy, ring, view, prefs, at_sec(6.0)).target, 2u);
}

TEST(RingLeastLoaded, SingleCandidateShortCircuits) {
  const auto ring = make_ring({1});
  MmpLoadView view;
  RingLeastLoaded policy(2);
  const std::vector<hash::RingNodeId> prefs{1};
  const auto d = pick(policy, ring, view, prefs, at_sec(1.0));
  EXPECT_EQ(d.target, 1u);
  EXPECT_EQ(d.reason, SteerReason::kOnlyCandidate);
}

TEST(RingLeastLoaded, FreshVmOutranksAnyReportedLoad) {
  // "No report yet" is not "load 0" in the accessors, but steering is
  // deliberately optimistic: a VM that never reported beats one reporting
  // 0.3 — new capacity gets traffic before its first report lands.
  const auto ring = make_ring({1, 2});
  MmpLoadView view;
  view.on_report(1, 0.3, 0, at_sec(1.0));
  RingLeastLoaded policy(2);
  const std::vector<hash::RingNodeId> prefs{1, 2};
  EXPECT_EQ(pick(policy, ring, view, prefs, at_sec(1.0)).target, 2u);
}

// ---------------------------------------------------- DeterministicAperture

TEST(DeterministicAperture, WindowsPartitionTheSortedRing) {
  const auto ring = make_ring({10, 20, 30, 40});
  DeterministicAperture::Config cfg;
  cfg.width = 2;
  cfg.peer_count = 2;
  cfg.peer_index = 0;
  DeterministicAperture peer0(cfg);
  cfg.peer_index = 1;
  DeterministicAperture peer1(cfg);

  EXPECT_TRUE(peer0.in_aperture(ring, 10));
  EXPECT_TRUE(peer0.in_aperture(ring, 20));
  EXPECT_FALSE(peer0.in_aperture(ring, 30));
  EXPECT_FALSE(peer0.in_aperture(ring, 40));

  EXPECT_FALSE(peer1.in_aperture(ring, 10));
  EXPECT_FALSE(peer1.in_aperture(ring, 20));
  EXPECT_TRUE(peer1.in_aperture(ring, 30));
  EXPECT_TRUE(peer1.in_aperture(ring, 40));

  // Not a ring member at all.
  EXPECT_FALSE(peer0.in_aperture(ring, 15));
}

TEST(DeterministicAperture, PrefersItsWindowAndSpillsWhenEmpty) {
  const auto ring = make_ring({10, 20, 30, 40});
  MmpLoadView view;
  DeterministicAperture::Config cfg;
  cfg.width = 2;
  cfg.peer_count = 2;
  cfg.peer_index = 0;  // window {10, 20}
  DeterministicAperture policy(cfg);
  const Time t = at_sec(1.0);

  // 30 is first in the preference list, but 10 is inside the window.
  const std::vector<hash::RingNodeId> prefs{30, 10};
  auto d = pick(policy, ring, view, prefs, t);
  EXPECT_EQ(d.target, 10u);
  EXPECT_EQ(d.reason, SteerReason::kApertureLocal);

  // No candidate in the window: spill to the ordinary least-loaded rule.
  const std::vector<hash::RingNodeId> outside{30, 40};
  d = pick(policy, ring, view, outside, t);
  EXPECT_EQ(d.target, 30u);
  EXPECT_EQ(d.reason, SteerReason::kApertureSpill);

  // Backoff outranks locality: never steer fresh work into a shedding VM.
  view.on_reject(10, at_sec(5.0));
  d = pick(policy, ring, view, prefs, t);
  EXPECT_EQ(d.target, 30u);
  EXPECT_EQ(d.reason, SteerReason::kApertureSpill);

  // Inside the window the lower load still wins.
  view.on_report(10, 0.9, 0, t);
  view.on_report(20, 0.1, 0, t);
  const std::vector<hash::RingNodeId> both{10, 20};
  d = pick(policy, ring, view, both, at_sec(6.0));
  EXPECT_EQ(d.target, 20u);
  EXPECT_EQ(d.reason, SteerReason::kApertureLocal);
}

// ------------------------------------------------------- PowerOfTwoChoices

TEST(PowerOfTwoChoices, TwoCandidatesLowerLoadWins) {
  const auto ring = make_ring({1, 2});
  MmpLoadView view;
  view.on_report(1, 0.9, 0, at_sec(1.0));
  view.on_report(2, 0.1, 0, at_sec(1.0));
  PowerOfTwoChoices policy({2});
  const std::vector<hash::RingNodeId> prefs{1, 2};

  auto d = pick(policy, ring, view, prefs, at_sec(1.0));
  EXPECT_EQ(d.target, 2u);
  EXPECT_EQ(d.reason, SteerReason::kP2cWinner);

  // Backoff disqualifies the otherwise-lighter candidate.
  view.on_reject(2, at_sec(5.0));
  EXPECT_EQ(pick(policy, ring, view, prefs, at_sec(1.0)).target, 1u);

  // On a load tie, locality wins: the earlier preference-list entry.
  MmpLoadView tied;
  tied.on_report(1, 0.4, 0, at_sec(1.0));
  tied.on_report(2, 0.4, 0, at_sec(1.0));
  EXPECT_EQ(pick(policy, ring, tied, prefs, at_sec(1.0)).target, 1u);
}

TEST(PowerOfTwoChoices, HashedPairIsDeterministicAndInBounds) {
  const auto ring = make_ring({1, 2, 3, 4});
  MmpLoadView view;
  PowerOfTwoChoices policy({4});
  const std::vector<hash::RingNodeId> prefs{1, 2, 3, 4};
  bool spread = false;
  std::uint64_t first_target = 0;
  for (std::uint64_t key = 1; key <= 64; ++key) {
    const auto a = pick(policy, ring, view, prefs, at_sec(1.0), key);
    const auto b = pick(policy, ring, view, prefs, at_sec(1.0), key);
    EXPECT_EQ(a.target, b.target) << "key " << key;
    EXPECT_NE(std::find(prefs.begin(), prefs.end(), a.target), prefs.end());
    if (key == 1) first_target = a.target;
    spread = spread || a.target != first_target;
  }
  // 64 keys over a 4-wide list must not all sample the same pair head.
  EXPECT_TRUE(spread);
}

// --------------------------------------------------- PassiveOutlierEjector

OutlierEjectorConfig ejector_cfg() {
  OutlierEjectorConfig cfg;
  cfg.min_pool = 3;
  cfg.consecutive = 2;
  cfg.base_ejection = Duration::sec(1.0);
  cfg.probe_interval = 2;
  cfg.clear_reports = 2;
  return cfg;
}

struct EjectorHarness {
  MmpLoadView view;
  PassiveOutlierEjector ej;

  explicit EjectorHarness(OutlierEjectorConfig cfg = ejector_cfg())
      : ej(std::make_unique<RingLeastLoaded>(2), cfg) {}

  void report(sim::NodeId mmp, double load, Time now) {
    view.on_report(mmp, load, 0, now);
    ej.on_load_report(mmp, view.entries().at(mmp), view, now);
  }
  /// Three-VM pool where `victim` reports `load` and the rest report 0.2.
  void round(double load, Time now, sim::NodeId victim = 3) {
    for (const sim::NodeId mmp : {1, 2, 3})
      report(mmp, mmp == victim ? load : 0.2, now);
  }
};

using Phase = PassiveOutlierEjector::Phase;

TEST(PassiveOutlierEjector, EjectsAfterConsecutiveOutliersThenFilters) {
  EjectorHarness h;
  const auto ring = make_ring({1, 2, 3});

  // Round 1: 2.0 vs mean 0.8 → outlier strike, still healthy.
  h.round(2.0, at_sec(1.0));
  EXPECT_EQ(h.ej.phase_of(3, at_sec(1.0)), Phase::kHealthy);
  EXPECT_EQ(h.ej.ejections(), 0u);

  // Round 2: second consecutive strike → ejected for base_ejection = 1 s.
  h.round(2.0, at_sec(2.0));
  EXPECT_EQ(h.ej.phase_of(3, at_sec(2.0)), Phase::kEjected);
  EXPECT_EQ(h.ej.ejections(), 1u);

  // Picks filter the ejected VM even when it heads the preference list.
  const std::vector<hash::RingNodeId> prefs{3, 1};
  const auto d = pick(h.ej, ring, h.view, prefs, at_sec(2.5));
  EXPECT_EQ(d.target, 1u);

  // A clean VM is never ejected by the same traffic.
  EXPECT_EQ(h.ej.phase_of(1, at_sec(2.5)), Phase::kHealthy);
}

TEST(PassiveOutlierEjector, NonConsecutiveOutliersDoNotEject) {
  EjectorHarness h;
  h.round(2.0, at_sec(1.0));
  h.round(0.2, at_sec(2.0));  // clean report resets the strike counter
  h.round(2.0, at_sec(3.0));
  EXPECT_EQ(h.ej.phase_of(3, at_sec(3.0)), Phase::kHealthy);
  EXPECT_EQ(h.ej.ejections(), 0u);
}

TEST(PassiveOutlierEjector, ProbationProbesThenReadmits) {
  EjectorHarness h;
  const auto ring = make_ring({1, 2, 3});
  h.round(2.0, at_sec(1.0));
  h.round(2.0, at_sec(2.0));  // ejected until t = 3 s

  // The window elapsed: probation. Probe cadence is every 2nd pick.
  EXPECT_EQ(h.ej.phase_of(3, at_sec(3.5)), Phase::kProbation);
  const std::vector<hash::RingNodeId> only3{3};
  // pick #1: off-turn — probation VM filtered, list empties, filter ignored.
  auto d = pick(h.ej, ring, h.view, only3, at_sec(3.5));
  EXPECT_EQ(d.target, 3u);
  EXPECT_EQ(d.reason, SteerReason::kAllEjected);
  // pick #2: probe turn — the probation VM is admitted and probed.
  d = pick(h.ej, ring, h.view, only3, at_sec(3.5));
  EXPECT_EQ(d.target, 3u);
  EXPECT_EQ(d.reason, SteerReason::kProbe);
  EXPECT_EQ(h.ej.probes(), 1u);

  // Two clean probation reports re-admit the VM.
  h.round(0.2, at_sec(4.0));
  EXPECT_EQ(h.ej.phase_of(3, at_sec(4.0)), Phase::kProbation);
  h.round(0.2, at_sec(4.2));
  EXPECT_EQ(h.ej.phase_of(3, at_sec(4.2)), Phase::kHealthy);
  EXPECT_EQ(h.ej.readmissions(), 1u);
}

TEST(PassiveOutlierEjector, ProbationFailureDoublesTheWindow) {
  EjectorHarness h;
  h.round(2.0, at_sec(1.0));
  h.round(2.0, at_sec(2.0));  // ejected until t = 3 s (mult 1)

  // Outlier report during probation → re-ejected with a doubled window.
  h.round(2.0, at_sec(3.5));
  EXPECT_EQ(h.ej.reejections(), 1u);
  EXPECT_EQ(h.ej.phase_of(3, at_sec(5.0)), Phase::kEjected);   // 3.5 + 2 s
  EXPECT_EQ(h.ej.phase_of(3, at_sec(5.6)), Phase::kProbation);
}

TEST(PassiveOutlierEjector, OverloadRejectFlunksProbation) {
  EjectorHarness h;
  h.round(2.0, at_sec(1.0));
  h.round(2.0, at_sec(2.0));
  EXPECT_EQ(h.ej.phase_of(3, at_sec(3.5)), Phase::kProbation);
  h.ej.on_overload_reject(3, at_sec(3.5));
  EXPECT_EQ(h.ej.phase_of(3, at_sec(3.5)), Phase::kEjected);
  EXPECT_EQ(h.ej.reejections(), 1u);
}

TEST(PassiveOutlierEjector, SmallPoolNeverEjectsItself) {
  EjectorHarness h;  // min_pool = 3
  for (int i = 1; i <= 5; ++i) {
    h.report(1, 0.1, at_sec(i));
    h.report(2, 9.0, at_sec(i));  // two reporters < min_pool
  }
  EXPECT_EQ(h.ej.phase_of(2, at_sec(6.0)), Phase::kHealthy);
  EXPECT_EQ(h.ej.ejections(), 0u);
}

TEST(PassiveOutlierEjector, MaxEjectFractionCapsTheSecondEjection) {
  OutlierEjectorConfig cfg = ejector_cfg();
  cfg.consecutive = 1;
  cfg.factor = 1.0;  // outlier = at-or-above the pool mean
  cfg.margin = 0.0;
  cfg.base_ejection = Duration::sec(100.0);
  EjectorHarness h(cfg);  // cap = max(1, 0.34 * 3 reporters) = 1 slot

  h.round(5.0, at_sec(1.0));  // node 3 takes the only ejection slot
  EXPECT_EQ(h.ej.phase_of(3, at_sec(1.0)), Phase::kEjected);
  h.round(5.0, at_sec(2.0), /*victim=*/2);  // outlier, but the slot is full
  EXPECT_EQ(h.ej.phase_of(2, at_sec(2.0)), Phase::kHealthy);
  EXPECT_EQ(h.ej.ejections(), 1u);
}

TEST(PassiveOutlierEjector, AllEjectedFallsBackToInnerPick) {
  OutlierEjectorConfig cfg = ejector_cfg();
  cfg.consecutive = 1;
  cfg.base_ejection = Duration::sec(100.0);
  EjectorHarness h(cfg);
  const auto ring = make_ring({1, 2, 3});
  h.round(2.0, at_sec(1.0));
  ASSERT_EQ(h.ej.phase_of(3, at_sec(1.0)), Phase::kEjected);

  const std::vector<hash::RingNodeId> only3{3};
  const auto d = pick(h.ej, ring, h.view, only3, at_sec(1.5));
  EXPECT_EQ(d.target, 3u);
  EXPECT_EQ(d.reason, SteerReason::kAllEjected);
}

// ----------------------------------------------------------- Mlb plumbing

struct SteeringWorld {
  Testbed tb;
  Testbed::Site* site;
  std::unique_ptr<core::ScaleCluster> cluster;

  explicit SteeringWorld(core::SteeringConfig steering,
                         std::size_t mmps = 3) {
    site = &tb.add_site(2);
    core::ScaleCluster::Config cfg;
    cfg.initial_mmps = mmps;
    cfg.mlb.steering = steering;
    cluster = std::make_unique<core::ScaleCluster>(
        tb.fabric(), site->sgw->node(), tb.hss().node(), cfg);
    for (auto& enb : site->enbs) cluster->connect_enb(*enb);
  }
};

TEST(MlbSteering, LoadOfBeforeFirstReportIsTheSentinel) {
  SteeringWorld w{core::SteeringConfig{}};
  const sim::NodeId mmp = w.cluster->mmp(0).node();
  // The cluster is built but no 100 ms report cycle has completed yet.
  EXPECT_FALSE(w.cluster->mlb().has_load_report(mmp));
  EXPECT_EQ(w.cluster->mlb().load_of(mmp), kNoLoadReport);

  w.tb.run_for(Duration::ms(350.0));
  EXPECT_TRUE(w.cluster->mlb().has_load_report(mmp));
  EXPECT_GE(w.cluster->mlb().load_of(mmp), 0.0);
}

TEST(MlbSteering, DefaultPolicyExportsNoSteeringMetrics) {
  // The paper-default config must keep fig10's metric export byte-identical
  // to the seed: no "mlb.steer.*" keys appear.
  SteeringWorld w{core::SteeringConfig{}};
  w.tb.make_ue(*w.site, 0, 0.5).attach();
  w.tb.run_for(Duration::sec(1.0));
  obs::MetricsRegistry reg;
  w.cluster->mlb().export_metrics(reg, "mlb");
  EXPECT_TRUE(reg.names_with_prefix("mlb.steer.").empty());
}

TEST(MlbSteering, AlternatePolicyExportsPickReasonCounters) {
  core::SteeringConfig steering;
  steering.policy = SteeringPolicyKind::kPowerOfTwoChoices;
  SteeringWorld w{steering};
  for (int i = 0; i < 8; ++i) w.tb.make_ue(*w.site, i % 2, 0.5).attach();
  w.tb.run_for(Duration::sec(2.0));

  ASSERT_GE(w.cluster->mlb().initial_routed(), 8u);
  EXPECT_GE(w.cluster->mlb().steer_picks(SteerReason::kP2cWinner), 1u);
  EXPECT_STREQ(w.cluster->mlb().steering().name(), "p2c");

  obs::MetricsRegistry reg;
  w.cluster->mlb().export_metrics(reg, "mlb");
  ASSERT_TRUE(reg.has("mlb.steer.p2c.picks.p2c_winner"));
  EXPECT_GE(reg.counter("mlb.steer.p2c.picks.p2c_winner"), 1u);
}

TEST(MlbSteering, EjectorDecoratorExportsItsCounters) {
  core::SteeringConfig steering;
  steering.outlier_ejection = true;
  SteeringWorld w{steering};
  w.tb.make_ue(*w.site, 0, 0.5).attach();
  w.tb.run_for(Duration::sec(1.0));

  ASSERT_NE(dynamic_cast<const PassiveOutlierEjector*>(
                &w.cluster->mlb().steering()),
            nullptr);
  obs::MetricsRegistry reg;
  w.cluster->mlb().export_metrics(reg, "mlb");
  EXPECT_TRUE(reg.has("mlb.steer.ring.ejector.ejections"));
  EXPECT_TRUE(reg.has("mlb.steer.ring.ejector.currently_ejected"));
}

// ------------------------------------------- determinism across policies

/// A small cluster trajectory under one policy; the digest covers routing
/// counters, per-VM totals, and the merged delay distribution.
std::string run_policy_digest(SteeringPolicyKind kind, bool eject,
                              unsigned threads) {
  Testbed::Config tcfg;
  tcfg.seed = 4242;
  tcfg.threads = threads;
  Testbed tb(tcfg);
  auto& site = tb.add_site(2);
  core::ScaleCluster::Config cfg;
  cfg.initial_mmps = 3;
  cfg.mlb.steering.policy = kind;
  cfg.mlb.steering.outlier_ejection = eject;
  core::ScaleCluster cluster(tb.fabric(), site.sgw->node(), tb.hss().node(),
                             cfg);
  for (auto& enb : site.enbs) cluster.connect_enb(*enb);

  auto ues = tb.make_ues(site, 80, {0.8});
  tb.register_all(site, Duration::sec(3.0), Duration::sec(2.0));
  workload::OpenLoopDriver::Config drv;
  drv.rate_per_sec = 120.0;
  drv.mix.service_request = 0.6;
  drv.mix.tau = 0.4;
  workload::OpenLoopDriver driver(tb.engine(), ues, drv);
  driver.start(tb.engine().now() + Duration::ms(100.0));
  tb.run_for(Duration::sec(2.0));

  std::ostringstream os;
  os << tb.engine().events_processed() << '|' << tb.network().messages_sent()
     << '|' << driver.issued() << '|' << cluster.total_requests() << '|'
     << cluster.mlb().initial_routed() << '|'
     << cluster.mlb().sticky_routed();
  for (std::size_t r = 0; r < core::kSteerReasonCount; ++r)
    os << '|' << cluster.mlb().steer_picks(static_cast<SteerReason>(r));
  for (auto& mmp : cluster.mmps())
    os << '|' << mmp->requests_handled() << ':' << mmp->app().store().size();
  if (tb.delays().total_count() > 0) {
    const auto merged = tb.delays().merged();
    os << '|' << merged.count() << ':' << merged.percentile(0.99);
  }
  return os.str();
}

TEST(SteeringDeterminism, EveryPolicyReplaysAcrossRunsAndThreads) {
  struct Arm {
    SteeringPolicyKind kind;
    bool eject;
  };
  const Arm arms[] = {
      {SteeringPolicyKind::kRingLeastLoaded, false},
      {SteeringPolicyKind::kDeterministicAperture, false},
      {SteeringPolicyKind::kPowerOfTwoChoices, false},
      {SteeringPolicyKind::kRingLeastLoaded, true},  // + outlier ejector
  };
  for (const Arm& arm : arms) {
    const std::string base = run_policy_digest(arm.kind, arm.eject, 0);
    ASSERT_FALSE(base.empty());
    EXPECT_EQ(run_policy_digest(arm.kind, arm.eject, 0), base)
        << steering_policy_name(arm.kind) << " eject=" << arm.eject;
    for (const unsigned threads : {1u, 2u, 4u}) {
      EXPECT_EQ(run_policy_digest(arm.kind, arm.eject, threads), base)
          << steering_policy_name(arm.kind) << " eject=" << arm.eject
          << " threads=" << threads;
    }
  }
}

// -------------------------------------------------------------- ablation

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int run_bench_json(const std::string& out_path) {
  const std::string cmd = std::string(SCALE_ABLATION_STEERING_BIN) +
                          " --quick --json " + out_path + " >/dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(SteeringAblation, QuickJsonIsByteIdenticalAcrossRuns) {
  const std::string a = ::testing::TempDir() + "ablation_steering_a.json";
  const std::string b = ::testing::TempDir() + "ablation_steering_b.json";
  ASSERT_EQ(run_bench_json(a), 0);
  ASSERT_EQ(run_bench_json(b), 0);
  const std::string ja = slurp(a);
  const std::string jb = slurp(b);
  ASSERT_FALSE(ja.empty());
  EXPECT_EQ(ja, jb) << "steering ablation must be bit-reproducible";
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(SteeringAblation, CommittedEvidenceIsPresent) {
  // The acceptance gate (an alternative beating the ring under slow-VM) is
  // enforced by the full bench's exit code; the committed JSON is the
  // evidence the gate passed. Keep it present and well-formed.
  const std::string json = slurp(std::string(SCALE_REPO_ROOT) +
                                 "/BENCH_steering.json");
  ASSERT_FALSE(json.empty()) << "BENCH_steering.json missing at repo root";
  EXPECT_NE(json.find("\"ablation_steering\""), std::string::npos);
  EXPECT_NE(json.find("slow-VM detail"), std::string::npos);
}

}  // namespace
}  // namespace scale

#include <gtest/gtest.h>

#include "common/check.h"

#include "sim/network.h"

namespace scale::sim {
namespace {

TEST(Network, DefaultLatencyApplies) {
  Network net(Duration::us(500));
  EXPECT_EQ(net.delay(1, 2), Duration::us(500));
}

TEST(Network, PairOverrideSymmetric) {
  Network net(Duration::us(500));
  net.set_latency(1, 2, Duration::ms(3.0));
  EXPECT_EQ(net.delay(1, 2), Duration::ms(3.0));
  EXPECT_EQ(net.delay(2, 1), Duration::ms(3.0));
  EXPECT_EQ(net.delay(1, 3), Duration::us(500));
}

TEST(Network, PairOverrideAsymmetric) {
  Network net(Duration::us(500));
  net.set_latency(1, 2, Duration::ms(3.0), /*symmetric=*/false);
  EXPECT_EQ(net.delay(1, 2), Duration::ms(3.0));
  EXPECT_EQ(net.delay(2, 1), Duration::us(500));
}

TEST(Network, DcLatencyMatrix) {
  Network net(Duration::us(500));
  net.set_node_dc(10, 1);
  net.set_node_dc(20, 2);
  net.set_node_dc(30, 1);
  net.set_dc_latency(1, 2, Duration::ms(20.0));
  // Cross-DC pair without explicit override: DC matrix.
  EXPECT_EQ(net.delay(10, 20), Duration::ms(20.0));
  EXPECT_EQ(net.delay(20, 10), Duration::ms(20.0));
  // Same-DC pair: default.
  EXPECT_EQ(net.delay(10, 30), Duration::us(500));
  // Pair override beats the DC matrix.
  net.set_latency(10, 20, Duration::ms(1.0));
  EXPECT_EQ(net.delay(10, 20), Duration::ms(1.0));
}

TEST(Network, UnknownNodeDefaultsToDcZero) {
  Network net(Duration::us(500));
  EXPECT_EQ(net.dc_of(42), 0u);
  net.set_node_dc(42, 3);
  EXPECT_EQ(net.dc_of(42), 3u);
}

TEST(Network, JitterBoundsDelay) {
  Network net(Duration::us(1000));
  net.set_jitter(0.2);
  for (int i = 0; i < 2000; ++i) {
    const Duration d = net.delay(1, 2);
    EXPECT_GE(d, Duration::us(800));
    EXPECT_LE(d, Duration::us(1200));
  }
}

TEST(Network, JitterValidation) {
  Network net;
  EXPECT_THROW(net.set_jitter(-0.1), scale::CheckError);
  EXPECT_THROW(net.set_jitter(1.0), scale::CheckError);
}

TEST(Network, TransferAccounting) {
  Network net;
  net.record_transfer(1, 2, 100);
  net.record_transfer(1, 2, 50);
  net.record_transfer(2, 1, 10);
  EXPECT_EQ(net.messages_sent(), 3u);
  EXPECT_EQ(net.bytes_sent(), 160u);
  EXPECT_EQ(net.messages_between(1, 2), 2u);
  EXPECT_EQ(net.messages_between(2, 1), 1u);
  EXPECT_EQ(net.messages_between(3, 4), 0u);
  net.reset_counters();
  EXPECT_EQ(net.messages_sent(), 0u);
  EXPECT_EQ(net.bytes_sent(), 0u);
}

}  // namespace
}  // namespace scale::sim

#include <gtest/gtest.h>

#include "common/check.h"

#include "sim/network.h"

namespace scale::sim {
namespace {

TEST(Network, DefaultLatencyApplies) {
  Network net(Duration::us(500));
  EXPECT_EQ(net.delay(1, 2), Duration::us(500));
}

TEST(Network, PairOverrideSymmetric) {
  Network net(Duration::us(500));
  net.set_latency(1, 2, Duration::ms(3.0));
  EXPECT_EQ(net.delay(1, 2), Duration::ms(3.0));
  EXPECT_EQ(net.delay(2, 1), Duration::ms(3.0));
  EXPECT_EQ(net.delay(1, 3), Duration::us(500));
}

TEST(Network, PairOverrideAsymmetric) {
  Network net(Duration::us(500));
  net.set_latency(1, 2, Duration::ms(3.0), /*symmetric=*/false);
  EXPECT_EQ(net.delay(1, 2), Duration::ms(3.0));
  EXPECT_EQ(net.delay(2, 1), Duration::us(500));
}

TEST(Network, DcLatencyMatrix) {
  Network net(Duration::us(500));
  net.set_node_dc(10, 1);
  net.set_node_dc(20, 2);
  net.set_node_dc(30, 1);
  net.set_dc_latency(1, 2, Duration::ms(20.0));
  // Cross-DC pair without explicit override: DC matrix.
  EXPECT_EQ(net.delay(10, 20), Duration::ms(20.0));
  EXPECT_EQ(net.delay(20, 10), Duration::ms(20.0));
  // Same-DC pair: default.
  EXPECT_EQ(net.delay(10, 30), Duration::us(500));
  // Pair override beats the DC matrix.
  net.set_latency(10, 20, Duration::ms(1.0));
  EXPECT_EQ(net.delay(10, 20), Duration::ms(1.0));
}

TEST(Network, UnknownNodeDefaultsToDcZero) {
  Network net(Duration::us(500));
  EXPECT_EQ(net.dc_of(42), 0u);
  net.set_node_dc(42, 3);
  EXPECT_EQ(net.dc_of(42), 3u);
}

TEST(Network, JitterBoundsDelay) {
  Network net(Duration::us(1000));
  net.set_jitter(0.2);
  for (int i = 0; i < 2000; ++i) {
    const Duration d = net.delay(1, 2);
    EXPECT_GE(d, Duration::us(800));
    EXPECT_LE(d, Duration::us(1200));
  }
}

TEST(Network, JitterValidation) {
  Network net;
  EXPECT_THROW(net.set_jitter(-0.1), scale::CheckError);
  EXPECT_THROW(net.set_jitter(1.0), scale::CheckError);
}

TEST(Network, TransferAccounting) {
  Network net;
  net.record_transfer(1, 2, 100);
  net.record_transfer(1, 2, 50);
  net.record_transfer(2, 1, 10);
  EXPECT_EQ(net.messages_sent(), 3u);
  EXPECT_EQ(net.bytes_sent(), 160u);
  EXPECT_EQ(net.messages_between(1, 2), 2u);
  EXPECT_EQ(net.messages_between(2, 1), 1u);
  EXPECT_EQ(net.messages_between(3, 4), 0u);
  net.reset_counters();
  EXPECT_EQ(net.messages_sent(), 0u);
  EXPECT_EQ(net.bytes_sent(), 0u);
}

TEST(FaultPlane, DisabledByDefault) {
  Network net;
  EXPECT_FALSE(net.faults_enabled());
  const FaultVerdict v = net.fault_verdict(1, 2, Time::zero());
  EXPECT_TRUE(v.deliver);
  EXPECT_FALSE(v.duplicate);
  EXPECT_EQ(v.extra_delay, Duration::zero());
  EXPECT_EQ(v.latency_factor, 1.0);
}

TEST(FaultPlane, ScriptedLinkDownWindow) {
  Network net;
  net.schedule_link_down(1, 2, Time::from_sec(1.0), Time::from_sec(2.0));
  EXPECT_TRUE(net.faults_enabled());
  EXPECT_TRUE(net.fault_verdict(1, 2, Time::from_sec(0.5)).deliver);
  EXPECT_FALSE(net.fault_verdict(1, 2, Time::from_sec(1.5)).deliver);
  EXPECT_FALSE(net.fault_verdict(2, 1, Time::from_sec(1.5)).deliver);
  // Half-open window: [from, until).
  EXPECT_TRUE(net.fault_verdict(1, 2, Time::from_sec(2.0)).deliver);
  // Unrelated link is untouched.
  EXPECT_TRUE(net.fault_verdict(1, 3, Time::from_sec(1.5)).deliver);
  EXPECT_EQ(net.fault_counters().link_down_drops, 2u);
  EXPECT_EQ(net.fault_counters().total_drops(), 2u);
}

TEST(FaultPlane, PartitionSeversCrossDcLinksOnly) {
  Network net;
  net.set_node_dc(10, 0);
  net.set_node_dc(20, 1);
  net.set_node_dc(30, 0);
  net.schedule_partition(0, 1, Time::from_sec(1.0), Time::from_sec(3.0));
  EXPECT_FALSE(net.fault_verdict(10, 20, Time::from_sec(2.0)).deliver);
  EXPECT_FALSE(net.fault_verdict(20, 10, Time::from_sec(2.0)).deliver);
  // Same-DC traffic flows through the partition.
  EXPECT_TRUE(net.fault_verdict(10, 30, Time::from_sec(2.0)).deliver);
  // Before/after the window the cross-DC link works.
  EXPECT_TRUE(net.fault_verdict(10, 20, Time::from_sec(0.5)).deliver);
  EXPECT_TRUE(net.fault_verdict(10, 20, Time::from_sec(3.0)).deliver);
  EXPECT_EQ(net.fault_counters().partition_drops, 2u);
}

TEST(FaultPlane, LatencySpikeMultipliesCrossDcLatency) {
  Network net;
  net.set_node_dc(20, 1);
  net.schedule_latency_spike(0, 1, Time::from_sec(1.0), Time::from_sec(2.0),
                             10.0);
  const FaultVerdict in = net.fault_verdict(10, 20, Time::from_sec(1.5));
  EXPECT_TRUE(in.deliver);
  EXPECT_EQ(in.latency_factor, 10.0);
  const FaultVerdict out = net.fault_verdict(10, 20, Time::from_sec(2.5));
  EXPECT_EQ(out.latency_factor, 1.0);
}

TEST(FaultPlane, StochasticDropDupReorder) {
  Network net;
  LinkFaults f;
  f.drop_prob = 1.0;
  net.set_global_faults(f);
  for (int i = 0; i < 10; ++i)
    EXPECT_FALSE(net.fault_verdict(1, 2, Time::zero()).deliver);
  EXPECT_EQ(net.fault_counters().random_drops, 10u);

  f.drop_prob = 0.0;
  f.dup_prob = 1.0;
  f.reorder_prob = 1.0;
  f.reorder_window = Duration::ms(7.0);
  net.set_global_faults(f);
  const FaultVerdict v = net.fault_verdict(1, 2, Time::zero());
  EXPECT_TRUE(v.deliver);
  EXPECT_TRUE(v.duplicate);
  EXPECT_EQ(v.extra_delay, Duration::ms(7.0));
  EXPECT_EQ(net.fault_counters().duplicates, 1u);
  EXPECT_EQ(net.fault_counters().reorders, 1u);
}

TEST(FaultPlane, PerLinkSpecOverridesGlobal) {
  Network net;
  LinkFaults lossy;
  lossy.drop_prob = 1.0;
  net.set_global_faults(lossy);
  net.set_link_faults(1, 2, LinkFaults{});  // clean override
  EXPECT_TRUE(net.fault_verdict(1, 2, Time::zero()).deliver);
  EXPECT_TRUE(net.fault_verdict(2, 1, Time::zero()).deliver);
  EXPECT_FALSE(net.fault_verdict(1, 3, Time::zero()).deliver);
}

TEST(FaultPlane, SameSeedReplaysIdentically) {
  Network a(Duration::us(500), 1234);
  Network b(Duration::us(500), 1234);
  LinkFaults f;
  f.drop_prob = 0.3;
  f.dup_prob = 0.2;
  f.reorder_prob = 0.1;
  a.set_global_faults(f);
  b.set_global_faults(f);
  for (int i = 0; i < 500; ++i) {
    const FaultVerdict va = a.fault_verdict(1, 2, Time::zero());
    const FaultVerdict vb = b.fault_verdict(1, 2, Time::zero());
    EXPECT_EQ(va.deliver, vb.deliver);
    EXPECT_EQ(va.duplicate, vb.duplicate);
    EXPECT_EQ(va.extra_delay, vb.extra_delay);
  }
  EXPECT_EQ(a.fault_counters(), b.fault_counters());
}

TEST(FaultPlane, FaultStreamIndependentOfJitterStream) {
  // Jitter draws between verdicts must not perturb fault outcomes: the two
  // subsystems own separate Rngs.
  Network quiet(Duration::us(500), 77);
  Network noisy(Duration::us(500), 77);
  noisy.set_jitter(0.3);
  LinkFaults f;
  f.drop_prob = 0.5;
  quiet.set_global_faults(f);
  noisy.set_global_faults(f);
  for (int i = 0; i < 300; ++i) {
    (void)noisy.delay(1, 2);  // consumes jitter randomness
    EXPECT_EQ(quiet.fault_verdict(1, 2, Time::zero()).deliver,
              noisy.fault_verdict(1, 2, Time::zero()).deliver);
  }
}

TEST(FaultPlane, ScriptedWindowsConsumeNoRandomness) {
  // A link-down drop is decided before any draw, so the stochastic stream
  // of other links is unaffected by how many scripted drops occurred.
  Network a(Duration::us(500), 9);
  Network b(Duration::us(500), 9);
  LinkFaults f;
  f.drop_prob = 0.5;
  a.set_global_faults(f);
  b.set_global_faults(f);
  b.schedule_link_down(8, 9, Time::zero(), Time::from_sec(10.0));
  for (int i = 0; i < 200; ++i) {
    // Only b sees (and drops) the scripted link's traffic...
    EXPECT_FALSE(b.fault_verdict(8, 9, Time::from_sec(1.0)).deliver);
    // ...yet the shared stochastic link stays in lockstep.
    EXPECT_EQ(a.fault_verdict(1, 2, Time::from_sec(1.0)).deliver,
              b.fault_verdict(1, 2, Time::from_sec(1.0)).deliver);
  }
}

TEST(FaultPlane, ResetCountersClearsFaultCountersToo) {
  Network net;
  LinkFaults f;
  f.drop_prob = 1.0;
  net.set_global_faults(f);
  net.record_transfer(1, 2, 64);
  (void)net.fault_verdict(1, 2, Time::zero());
  net.schedule_link_down(3, 4, Time::zero(), Time::from_sec(1.0));
  (void)net.fault_verdict(3, 4, Time::from_sec(0.5));
  ASSERT_GT(net.fault_counters().total_drops(), 0u);

  net.reset_counters();
  EXPECT_EQ(net.messages_sent(), 0u);
  EXPECT_EQ(net.bytes_sent(), 0u);
  EXPECT_EQ(net.fault_counters(), FaultCounters{});
  // Specs survive a counter reset (measurement window ends; faults do not).
  EXPECT_TRUE(net.faults_enabled());
  EXPECT_FALSE(net.fault_verdict(1, 2, Time::zero()).deliver);
}

TEST(FaultPlane, ClearFaultsDisablesButKeepsCounters) {
  Network net;
  LinkFaults f;
  f.drop_prob = 1.0;
  net.set_global_faults(f);
  (void)net.fault_verdict(1, 2, Time::zero());
  net.clear_faults();
  EXPECT_FALSE(net.faults_enabled());
  EXPECT_TRUE(net.fault_verdict(1, 2, Time::zero()).deliver);
  EXPECT_EQ(net.fault_counters().random_drops, 1u);
}

TEST(FaultPlane, Validation) {
  Network net;
  LinkFaults bad;
  bad.drop_prob = 1.5;
  EXPECT_THROW(net.set_global_faults(bad), scale::CheckError);
  bad.drop_prob = -0.1;
  EXPECT_THROW(net.set_link_faults(1, 2, bad), scale::CheckError);
  EXPECT_THROW(
      net.schedule_link_down(1, 2, Time::from_sec(2.0), Time::from_sec(1.0)),
      scale::CheckError);
  EXPECT_THROW(
      net.schedule_partition(1, 1, Time::zero(), Time::from_sec(1.0)),
      scale::CheckError);
  EXPECT_THROW(net.schedule_latency_spike(0, 1, Time::zero(),
                                          Time::from_sec(1.0), 0.5),
               scale::CheckError);
}

}  // namespace
}  // namespace scale::sim

// Validates the Appendix closed form against direct numerical evaluation
// of the underlying integral (Eqs. 5–7), R = 1:
//
//   C̄ᵢ = C ∫₀ᵀ (1 − e^{−λ(T−t)}) wᵢ Σ_{k≥N} P(N(t)=k) (1 − wᵢ/(λT))^k dt
//
// The closed form (Eq. 8) takes T large (complete gamma integrals and no
// end-of-epoch truncation); the two must agree tightly when λT ≫ N.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/replication_model.h"

namespace scale::analysis {
namespace {

// P(Poisson(λt) = k) numerically stable via logs.
double log_poisson_pmf(double lambda_t, std::uint64_t k) {
  const double kd = static_cast<double>(k);
  return kd * std::log(lambda_t) - lambda_t - std::lgamma(kd + 1.0);
}

// Direct Simpson integration of Eq. 7 for R = 1.
double numeric_cost_r1(double lambda, double T, std::uint64_t N, double wi,
                       double C) {
  const double q = 1.0 - wi / (lambda * T);
  const int steps = 4000;  // even
  const double h = T / steps;
  auto integrand = [&](double t) {
    if (t <= 0.0) return 0.0;
    const double lt = lambda * t;
    double tail = 0.0;
    // Sum the Poisson tail k >= N with the q^k weighting.
    for (std::uint64_t k = N; k < N + 4000; ++k) {
      const double term =
          std::exp(log_poisson_pmf(lt, k) +
                   static_cast<double>(k) * std::log(q));
      tail += term;
      if (term < 1e-14 * tail && k > N + 16) break;
    }
    return (1.0 - std::exp(-lambda * (T - t))) * wi * tail;
  };
  double sum = integrand(0.0) + integrand(T);
  for (int i = 1; i < steps; ++i)
    sum += integrand(i * h) * (i % 2 ? 4.0 : 2.0);
  return C * sum * h / 3.0;
}

TEST(AnalysisNumeric, ClosedFormUpperBoundsTruncatedIntegral) {
  // The paper's large-T step replaces each ∫₀ᵀ P(N(t)=k) dt with the
  // complete 1/λ and drops the (1 − e^{−λ(T−t)}) truncation, so the closed
  // form is an UPPER BOUND on the finite-epoch integral — never below it,
  // and within a bounded factor when λT ≫ N.
  ReplicationModel::Params p;
  p.lambda = 10.0;
  p.epoch_T = 60.0;
  p.capacity_N = 50;
  p.cost_C = 1.0;
  ReplicationModel model(p);
  for (double wi : {0.3, 0.6, 0.9}) {
    const double closed = model.expected_cost(wi, 1);
    const double numeric =
        numeric_cost_r1(p.lambda, p.epoch_T, p.capacity_N, wi, p.cost_C);
    ASSERT_GT(numeric, 0.0);
    EXPECT_GE(closed, numeric) << "wi=" << wi;
    EXPECT_LE(closed, 6.0 * numeric)
        << "wi=" << wi << " closed=" << closed << " numeric=" << numeric;
  }
}

TEST(AnalysisNumeric, BothFormsAgreeOnTheSaturationKnee) {
  // What the model is used for (Fig. 6a): the *shape* vs arrival rate.
  // Closed form and truncated integral must both be monotone in λ and
  // place the blow-up in the same place (cost at λ_hi ≫ cost at λ_lo).
  auto cost_at = [](double lambda, bool closed_form) {
    ReplicationModel::Params p;
    p.lambda = lambda;
    p.epoch_T = 60.0;
    p.capacity_N = 240;
    p.cost_C = 1.0;
    if (closed_form) return ReplicationModel(p).expected_cost(0.9, 1);
    return numeric_cost_r1(p.lambda, p.epoch_T, p.capacity_N, 0.9, 1.0);
  };
  for (const bool closed : {true, false}) {
    const double lo = cost_at(0.7, closed);  // λT = 42 ≪ N: pre-knee
    const double mid = cost_at(1.5, closed);
    const double hi = cost_at(4.0, closed);  // λT = 240 = N: saturated
    EXPECT_LT(lo, mid);
    EXPECT_LT(mid, hi);
    EXPECT_GT(hi, 20.0 * lo) << "blow-up missing, closed=" << closed;
  }
}

}  // namespace
}  // namespace scale::analysis

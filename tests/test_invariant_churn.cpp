// Randomized churn with invariant sweeps: drive a SCALE cluster through
// load, elasticity (add/remove VMs), and a crash, then assert the global
// invariants the design promises. Seeds are parameterized (TEST_P).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/cluster.h"
#include "testbed/testbed.h"
#include "workload/arrivals.h"

namespace scale {
namespace {

using epc::ContextRole;
using testbed::Testbed;

struct ChurnWorld {
  Testbed tb;
  Testbed::Site* site;
  std::unique_ptr<core::ScaleCluster> cluster;

  explicit ChurnWorld(std::uint64_t seed) : tb(make_cfg(seed)) {
    // eNB-side RRC supervision: devices whose serving VM crashed mid-
    // Active are locally released after 4 s instead of staying zombie-
    // connected forever.
    site = &tb.add_site(2, /*tac=*/1, Duration::ms(1.0), /*dc=*/0,
                        /*rrc_inactivity=*/Duration::sec(4.0));
    core::ScaleCluster::Config cfg;
    cfg.initial_mmps = 3;
    cfg.seed = seed;
    cfg.vm_template.app.profile.inactivity_timeout = Duration::ms(700.0);
    cluster = std::make_unique<core::ScaleCluster>(
        tb.fabric(), site->sgw->node(), tb.hss().node(), cfg);
    for (auto& enb : site->enbs) cluster->connect_enb(*enb);
  }

  static Testbed::Config make_cfg(std::uint64_t seed) {
    Testbed::Config cfg;
    cfg.seed = seed;
    cfg.ue_guard_timeout = Duration::sec(6.0);
    return cfg;
  }
};

// The design's global invariants after the system settles:
//   1. at most one Master copy per device, and it lives on the ring owner;
//   2. every registered device has at least one copy somewhere — after a
//      crash, a surviving Replica suffices (it is promoted on the device's
//      next request, FailureInjection.SurvivingVmPromotesReplicaToMaster);
//   3. store memory accounting equals the sum of its contents;
//   4. no master belongs to a detached device.
void check_invariants(ChurnWorld& w) {
  std::map<std::uint64_t, int> master_copies;
  std::map<std::uint64_t, int> any_copies;
  std::set<std::uint64_t> registered_keys;
  std::size_t zombies = 0;  // think-Active devices whose server crashed
  for (const auto& ue : w.site->ues) {
    if (!ue->registered()) continue;
    if (ue->connected()) {
      // With eNB RRC supervision enabled, no device should be stuck
      // believing it is Active this long after the load stopped.
      ++zombies;
      continue;
    }
    registered_keys.insert(ue->guti()->key());
  }
  EXPECT_EQ(zombies, 0u)
      << "devices stranded in zombie-Active state despite RRC supervision";

  for (auto& mmp : w.cluster->mmps()) {
    std::uint64_t bytes = 0;
    std::size_t masters = 0, replicas = 0, externals = 0;
    mmp->app().store().for_each([&](mme::UeContext& ctx) {
      ++any_copies[ctx.rec.guti.key()];
      bytes += ctx.rec.state_bytes;
      switch (ctx.role) {
        case ContextRole::kMaster: ++masters; break;
        case ContextRole::kReplica: ++replicas; break;
        case ContextRole::kExternal: ++externals; break;
      }
      if (ctx.role == ContextRole::kMaster) {
        ++master_copies[ctx.rec.guti.key()];
        EXPECT_EQ(w.cluster->ring().owner(ctx.rec.guti.key()), mmp->node())
            << "master copy living off the ring owner";
      }
    });
    // (3) accounting consistency.
    EXPECT_EQ(mmp->app().store().total_bytes(), bytes);
    EXPECT_EQ(mmp->app().store().count(ContextRole::kMaster), masters);
    EXPECT_EQ(mmp->app().store().count(ContextRole::kReplica), replicas);
    EXPECT_EQ(mmp->app().store().count(ContextRole::kExternal), externals);
  }

  // (1) never more than one master; (2) some copy for every registered
  // device (a crash may leave only a not-yet-promoted replica).
  for (const auto& [key, copies] : master_copies)
    EXPECT_LE(copies, 1) << "duplicate masters for key " << key;
  for (std::uint64_t key : registered_keys)
    EXPECT_GE(any_copies[key], 1)
        << "registered device lost all state after recovery round";
  // (4) masters only for registered devices (idle-detached leave nothing).
  for (const auto& [key, copies] : master_copies)
    EXPECT_TRUE(registered_keys.count(key))
        << "orphan master for unregistered device";
}

class ChurnSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChurnSweep, InvariantsHoldThroughLoadElasticityAndCrash) {
  ChurnWorld w(GetParam());
  auto ues = w.tb.make_ues(*w.site, 150, {0.8});
  w.tb.register_all(*w.site, Duration::sec(4.0), Duration::sec(6.0));

  workload::OpenLoopDriver::Config drv;
  drv.rate_per_sec = 250.0;
  drv.mix.service_request = 0.5;
  drv.mix.tau = 0.3;
  drv.mix.handover = 0.15;
  drv.mix.detach = 0.05;
  drv.seed = GetParam() * 3 + 1;
  workload::OpenLoopDriver driver(w.tb.engine(), ues, drv);
  driver.set_handover_targets(w.site->enb_ptrs());
  driver.start(w.tb.engine().now() + Duration::sec(20.0));

  // Churn: grow, shrink, crash, epoch — interleaved with live traffic.
  w.tb.run_for(Duration::sec(3.0));
  w.cluster->add_mmp();
  w.tb.run_for(Duration::sec(3.0));
  w.cluster->add_mmp();
  w.tb.run_for(Duration::sec(3.0));
  w.cluster->remove_last_mmp();
  w.tb.run_for(Duration::sec(3.0));
  w.cluster->crash_mmp(1);
  w.tb.run_for(Duration::sec(4.0));
  w.cluster->run_epoch();
  // Quiesce: let every in-flight procedure finish, devices re-settle,
  // replicas sync at idle.
  w.tb.run_for(Duration::sec(8.0));

  // Touch every device (twice — a first-round touch can collide with a
  // still-pending guard window): a device whose copies BOTH died (replica
  // with the removed VM, master with the crashed one — a double fault the
  // design recovers from on next contact) gets rejected and re-attaches.
  for (int round = 0; round < 2; ++round) {
    for (epc::Ue* ue : ues)
      if (ue->registered() && !ue->connected() && !ue->busy())
        ue->service_request();
    w.tb.run_for(Duration::sec(10.0));
  }

  check_invariants(w);
  // Liveness: the overwhelming majority of devices end registered.
  std::size_t registered = 0;
  for (epc::Ue* ue : ues)
    if (ue->registered()) ++registered;
  EXPECT_GE(registered, ues.size() * 9 / 10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnSweep,
                         ::testing::Values(101u, 202u, 303u, 404u));

}  // namespace
}  // namespace scale

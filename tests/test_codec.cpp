// Round-trip and robustness tests for the full PDU codec — every message
// family that can cross a link.
#include <gtest/gtest.h>

#include "common/check.h"

#include "proto/codec.h"

namespace scale::proto {
namespace {

Guti test_guti() { return Guti{310, 17, 3, 0xBEEF01}; }

template <typename T>
void expect_roundtrip(T msg) {
  const Pdu pdu = make_pdu(std::move(msg));
  const auto bytes = encode_pdu(pdu);
  const Pdu decoded = decode_pdu(bytes);
  EXPECT_STREQ(pdu_name(pdu), pdu_name(decoded));
  // Re-encoding the decoded PDU must be byte-identical (canonical form).
  EXPECT_EQ(encode_pdu(decoded), bytes);
}

TEST(Codec, GutiKeyInjective) {
  const Guti a{1, 2, 3, 400}, b{1, 2, 3, 401}, c{1, 2, 4, 400};
  EXPECT_NE(a.key(), b.key());
  EXPECT_NE(a.key(), c.key());
  EXPECT_EQ(a.key(), (Guti{1, 2, 3, 400}).key());
}

TEST(Codec, NasAttachRequestWithAndWithoutGuti) {
  NasAttachRequest with;
  with.imsi = 123456789012345ull;
  with.old_guti = test_guti();
  with.tac = 7;
  expect_roundtrip(InitialUeMessage{1, 2, 7, NasMessage{with}});

  NasAttachRequest without;
  without.imsi = 1;
  expect_roundtrip(InitialUeMessage{1, 2, 7, NasMessage{without}});
}

TEST(Codec, NasFieldFidelity) {
  NasAttachRequest req;
  req.imsi = 0xFFFFFFFFFFFFull;
  req.old_guti = test_guti();
  req.tac = 0xABCD;
  ByteWriter w;
  encode_nas(NasMessage{req}, w);
  ByteReader r(w.data());
  const NasMessage decoded = decode_nas(r);
  ASSERT_TRUE(std::holds_alternative<NasAttachRequest>(decoded));
  EXPECT_EQ(std::get<NasAttachRequest>(decoded), req);
}

TEST(Codec, AllNasMessagesRoundTrip) {
  const std::vector<NasMessage> msgs = {
      NasAttachRequest{1, test_guti(), 2},
      NasAuthenticationRequest{0xAAAA, 0xBBBB},
      NasAuthenticationResponse{0xCCCC},
      NasSecurityModeCommand{1, 2},
      NasSecurityModeComplete{},
      NasAttachAccept{test_guti(), 7200},
      NasAttachComplete{},
      NasServiceRequest{3, 0xBEEF01, 0x55},
      NasServiceAccept{},
      NasServiceReject{9},
      NasTauRequest{test_guti(), 12, true},
      NasTauAccept{test_guti(), 1800},
      NasDetachRequest{test_guti()},
      NasDetachAccept{},
  };
  for (const auto& m : msgs) {
    ByteWriter w;
    encode_nas(m, w);
    ByteReader r(w.data());
    const NasMessage back = decode_nas(r);
    EXPECT_STREQ(nas_name(m), nas_name(back));
    EXPECT_TRUE(r.at_end());
  }
}

TEST(Codec, AllS1apMessagesRoundTrip) {
  expect_roundtrip(InitialUeMessage{9, 8, 7, NasMessage{NasServiceRequest{}}});
  expect_roundtrip(UplinkNasTransport{9, 8, MmeUeId::make(3, 100),
                                      NasMessage{NasAuthenticationResponse{}}});
  expect_roundtrip(DownlinkNasTransport{9, 8, MmeUeId::make(3, 100),
                                        NasMessage{NasAttachAccept{}}});
  expect_roundtrip(InitialContextSetupRequest{9, 8, MmeUeId::make(3, 1),
                                              Teid::make(3, 5)});
  expect_roundtrip(InitialContextSetupResponse{9, 8, MmeUeId::make(3, 1),
                                               Teid::make(0, 6)});
  expect_roundtrip(UeContextReleaseCommand{
      9, 8, MmeUeId::make(3, 1), ReleaseCause::kLoadBalancingTauRequired});
  expect_roundtrip(UeContextReleaseComplete{9, 8, MmeUeId::make(3, 1)});
  expect_roundtrip(Paging{0xBEEF, 12});
  expect_roundtrip(PathSwitchRequest{10, 8, MmeUeId::make(3, 1), 12});
  expect_roundtrip(PathSwitchAck{10, 8, MmeUeId::make(3, 1)});
  expect_roundtrip(OverloadStart{2, 250000});
}

TEST(Codec, OverloadRejectFieldFidelity) {
  OverloadReject rej;
  rej.mmp_node = 4;
  rej.origin = 9;
  rej.guti = test_guti();
  rej.backoff_us = 200000;
  rej.procedure = 2;  // kTrackingAreaUpdate
  rej.level = 3;      // kOverload
  rej.inner = box(make_pdu(Paging{1, 2}));
  const auto bytes = encode_pdu(make_pdu(ClusterMessage{rej}));
  const Pdu decoded = decode_pdu(bytes);
  const auto& back = std::get<OverloadReject>(std::get<ClusterMessage>(decoded));
  EXPECT_EQ(back.mmp_node, 4u);
  EXPECT_EQ(back.backoff_us, 200000u);
  EXPECT_EQ(back.procedure, 2u);
  EXPECT_EQ(back.level, 3u);
  ASSERT_NE(back.inner, nullptr);
}

TEST(Codec, AllS11MessagesRoundTrip) {
  expect_roundtrip(CreateSessionRequest{123, Teid::make(2, 9)});
  expect_roundtrip(CreateSessionResponse{Teid::make(2, 9), Teid{77}});
  expect_roundtrip(ModifyBearerRequest{Teid{77}, Teid::make(2, 9), 5});
  expect_roundtrip(ModifyBearerResponse{Teid::make(2, 9)});
  expect_roundtrip(ReleaseAccessBearersRequest{Teid{77}, Teid::make(2, 9)});
  expect_roundtrip(ReleaseAccessBearersResponse{Teid::make(2, 9)});
  expect_roundtrip(DeleteSessionRequest{Teid{77}, Teid::make(2, 9)});
  expect_roundtrip(DeleteSessionResponse{Teid::make(2, 9)});
  expect_roundtrip(DownlinkDataNotification{Teid::make(2, 9)});
  expect_roundtrip(DownlinkDataNotificationAck{Teid{77}});
}

TEST(Codec, AllS6MessagesRoundTrip) {
  expect_roundtrip(AuthInfoRequest{123, 42});
  expect_roundtrip(AuthInfoAnswer{123, 42, true, 1, 2, 3});
  expect_roundtrip(UpdateLocationRequest{123, 7, 42});
  expect_roundtrip(UpdateLocationAnswer{123, true, 9, 42});
}

TEST(Codec, HopRefEchoPreserved) {
  AuthInfoAnswer ans;
  ans.imsi = 5;
  ans.hop_ref = 0xDEADBEEF;
  const auto bytes = encode_pdu(make_pdu(ans));
  const Pdu decoded = decode_pdu(bytes);
  const auto& s6 = std::get<S6Message>(decoded);
  EXPECT_EQ(std::get<AuthInfoAnswer>(s6).hop_ref, 0xDEADBEEFu);
}

TEST(Codec, UeContextRecordFullFidelity) {
  UeContextRecord rec;
  rec.imsi = 123456789012345ull;
  rec.guti = test_guti();
  rec.active = true;
  rec.enb_id = 42;
  rec.enb_ue_id = 77;
  rec.mme_ue_id = MmeUeId::make(9, 1000);
  rec.sgw_teid = Teid{555};
  rec.mme_teid = Teid::make(9, 666);
  rec.tac = 12;
  rec.kasme = 0x1122334455667788ull;
  rec.access_freq = 0.73;
  rec.version = 15;
  rec.master_mmp = 3;
  rec.home_dc = 2;
  rec.external_dc = 1;
  rec.sgw_node = 88;
  rec.state_bytes = 4096;

  ByteWriter w;
  rec.encode(w);
  ByteReader r(w.data());
  EXPECT_EQ(UeContextRecord::decode(r), rec);
}

TEST(Codec, ClusterEnvelopesRoundTrip) {
  ClusterForward fwd;
  fwd.origin = 9;
  fwd.guti = test_guti();
  fwd.no_offload = true;
  fwd.inner = box(make_pdu(Paging{1, 2}));
  const auto bytes = encode_pdu(make_pdu(fwd));
  const Pdu decoded = decode_pdu(bytes);
  const auto& cluster = std::get<ClusterMessage>(decoded);
  const auto& back = std::get<ClusterForward>(cluster);
  EXPECT_EQ(back.origin, 9u);
  EXPECT_TRUE(back.no_offload);
  EXPECT_EQ(back.guti, test_guti());
  ASSERT_NE(back.inner, nullptr);
  EXPECT_STREQ(pdu_name(back.inner->value), "Paging");
}

TEST(Codec, NestedEnvelopesRoundTrip) {
  // Reply carrying a forward carrying an S1AP message — two levels deep.
  ClusterForward fwd;
  fwd.origin = 1;
  fwd.inner = box(make_pdu(Paging{5, 6}));
  ClusterReply reply;
  reply.target = 2;
  reply.inner = box(make_pdu(fwd));
  const auto bytes = encode_pdu(make_pdu(reply));
  const Pdu decoded = decode_pdu(bytes);
  const auto& outer =
      std::get<ClusterReply>(std::get<ClusterMessage>(decoded));
  const auto& inner_fwd = std::get<ClusterForward>(
      std::get<ClusterMessage>(outer.inner->value));
  EXPECT_STREQ(pdu_name(inner_fwd.inner->value), "Paging");
}

TEST(Codec, GeoMessagesRoundTrip) {
  GeoForward gf;
  gf.origin = 1;
  gf.home_dc = 2;
  gf.home_mlb = 3;
  gf.guti = test_guti();
  gf.inner = box(make_pdu(Paging{1, 1}));
  expect_roundtrip(gf);

  GeoReject rej;
  rej.guti = test_guti();
  rej.origin = 4;
  rej.inner = box(make_pdu(Paging{1, 1}));
  expect_roundtrip(rej);

  expect_roundtrip(GeoBudgetGossip{3, 123.5});
  expect_roundtrip(GeoEvictRequest{3, 0.25});
}

TEST(Codec, RingUpdateRoundTrip) {
  RingUpdate update;
  update.version = 42;
  for (std::uint32_t i = 1; i <= 30; ++i)
    update.members.push_back({i * 100, static_cast<std::uint8_t>(i)});
  const auto bytes = encode_pdu(make_pdu(update));
  const auto& back = std::get<RingUpdate>(
      std::get<ClusterMessage>(decode_pdu(bytes)));
  EXPECT_EQ(back.version, 42u);
  ASSERT_EQ(back.members.size(), 30u);
  EXPECT_EQ(back.members[7], update.members[7]);
}

TEST(Codec, ReplicaAndTransferRoundTrip) {
  UeContextRecord rec;
  rec.guti = test_guti();
  expect_roundtrip(ReplicaPush{rec, true});
  expect_roundtrip(ReplicaAck{test_guti(), 3, 1});
  expect_roundtrip(ReplicaDelete{test_guti()});
  expect_roundtrip(StateTransfer{rec});
  expect_roundtrip(StateTransferAck{test_guti()});
  expect_roundtrip(LoadReport{5, 0.87, 120});
}

TEST(Codec, MalformedInputsThrowNotCrash) {
  // Unknown family tag.
  const std::uint8_t bad_family[] = {99, 0, 0};
  EXPECT_THROW(decode_pdu(bad_family), CodecError);
  // Unknown S1AP type.
  const std::uint8_t bad_type[] = {1, 200};
  EXPECT_THROW(decode_pdu(bad_type), CodecError);
  // Truncated valid prefix.
  const auto good = encode_pdu(make_pdu(Paging{1, 2}));
  for (std::size_t cut = 1; cut < good.size(); ++cut) {
    std::span<const std::uint8_t> prefix(good.data(), cut);
    EXPECT_THROW(decode_pdu(prefix), CodecError) << "cut at " << cut;
  }
  // Trailing garbage after a valid PDU.
  auto padded = good;
  padded.push_back(0);
  EXPECT_THROW(decode_pdu(padded), CodecError);
}

TEST(Codec, WireSizeMatchesEncodedSize) {
  const Pdu pdu = make_pdu(InitialUeMessage{
      1, 2, 3, NasMessage{NasAttachRequest{42, test_guti(), 3}}});
  EXPECT_EQ(wire_size(pdu), encode_pdu(pdu).size());
}

TEST(Codec, MmeUeIdAndTeidEmbedding) {
  const MmeUeId id = MmeUeId::make(0xAB, 0x123456);
  EXPECT_EQ(id.mmp_id(), 0xAB);
  EXPECT_EQ(id.seq(), 0x123456u);
  const Teid teid = Teid::make(0xCD, 0x654321);
  EXPECT_EQ(teid.owner_id(), 0xCD);
  EXPECT_TRUE(teid.valid());
  EXPECT_FALSE(Teid{}.valid());
}

}  // namespace
}  // namespace scale::proto

#include <gtest/gtest.h>

#include "common/check.h"

#include "proto/buffer.h"

namespace scale::proto {
namespace {

TEST(ByteWriter, BigEndianEncoding) {
  ByteWriter w;
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  const auto& d = w.data();
  ASSERT_EQ(d.size(), 6u);
  EXPECT_EQ(d[0], 0x12);
  EXPECT_EQ(d[1], 0x34);
  EXPECT_EQ(d[2], 0xDE);
  EXPECT_EQ(d[5], 0xEF);
}

TEST(ByteRoundTrip, AllScalarTypes) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0xCDEF);
  w.u32(0x01234567);
  w.u64(0x89ABCDEF01234567ull);
  w.f64(3.14159);
  w.boolean(true);
  w.boolean(false);
  w.str("hello");

  ByteReader r(w.data());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xCDEF);
  EXPECT_EQ(r.u32(), 0x01234567u);
  EXPECT_EQ(r.u64(), 0x89ABCDEF01234567ull);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_EQ(r.str(), "hello");
  EXPECT_TRUE(r.at_end());
  EXPECT_NO_THROW(r.expect_end());
}

TEST(ByteRoundTrip, NegativeAndSpecialDoubles) {
  ByteWriter w;
  w.f64(-0.0);
  w.f64(1e308);
  w.f64(-12345.6789);
  ByteReader r(w.data());
  EXPECT_DOUBLE_EQ(r.f64(), -0.0);
  EXPECT_DOUBLE_EQ(r.f64(), 1e308);
  EXPECT_DOUBLE_EQ(r.f64(), -12345.6789);
}

TEST(ByteReader, TruncationThrows) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.data());
  EXPECT_NO_THROW((void)r.u8());
  EXPECT_THROW((void)r.u32(), CodecError);
}

TEST(ByteReader, BadBooleanThrows) {
  const std::uint8_t bytes[] = {2};
  ByteReader r(bytes);
  EXPECT_THROW((void)r.boolean(), CodecError);
}

TEST(ByteReader, TrailingBytesDetected) {
  ByteWriter w;
  w.u32(1);
  ByteReader r(w.data());
  (void)r.u16();  // value irrelevant; advancing past the first field
  EXPECT_THROW(r.expect_end(), CodecError);
  EXPECT_EQ(r.remaining(), 2u);
}

TEST(ByteReader, TruncatedStringThrows) {
  ByteWriter w;
  w.u16(100);  // claims 100 bytes follow
  ByteReader r(w.data());
  EXPECT_THROW(r.str(), CodecError);
}

TEST(ByteReader, BytesExtraction) {
  ByteWriter w;
  const std::uint8_t payload[] = {1, 2, 3, 4};
  w.bytes(payload);
  ByteReader r(w.data());
  const auto out = r.bytes(4);
  EXPECT_EQ(out, std::vector<std::uint8_t>({1, 2, 3, 4}));
}

TEST(ByteWriter, OptionalHelper) {
  ByteWriter w;
  std::optional<std::uint32_t> some = 42, none;
  w.optional(some, &ByteWriter::u32);
  w.optional(none, &ByteWriter::u32);
  ByteReader r(w.data());
  EXPECT_EQ(r.optional(&ByteReader::u32), std::optional<std::uint32_t>(42));
  EXPECT_EQ(r.optional(&ByteReader::u32), std::nullopt);
}

TEST(ByteWriter, EmptyString) {
  ByteWriter w;
  w.str("");
  ByteReader r(w.data());
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.at_end());
}

}  // namespace
}  // namespace scale::proto

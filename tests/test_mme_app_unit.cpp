// MmeApp driven directly through its hooks — no fabric, no UE, no eNodeB:
// pins the exact message sequence each procedure FSM emits.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mme/mme_app.h"
#include "proto/codec.h"

namespace scale::mme {
namespace {

struct Harness {
  sim::Engine engine;
  sim::CpuModel cpu{engine};
  std::vector<std::string> outbox;  // "iface:MessageName"
  std::vector<proto::S1apMessage> to_enb;
  std::vector<proto::S11Message> to_sgw;
  std::vector<proto::S6Message> to_hss;
  std::unique_ptr<MmeApp> app;

  explicit Harness(MmeApp::Config cfg = {}) {
    cfg.hop_ref = 42;
    // engine.run() drains to empty; the 5 s inactivity timer would fire
    // within these step-by-step tests, so keep it out of the sequences.
    cfg.enable_inactivity_timer = false;
    app = std::make_unique<MmeApp>(
        engine, cpu, cfg,
        MmeAppHooks{
            .to_enb =
                [this](sim::NodeId, proto::S1apMessage m) {
                  outbox.push_back(std::string("s1ap:") + proto::s1ap_name(m));
                  to_enb.push_back(std::move(m));
                },
            .to_sgw =
                [this](const UeContext&, proto::S11Message m) {
                  outbox.push_back(std::string("s11:") + proto::s11_name(m));
                  to_sgw.push_back(std::move(m));
                },
            .to_hss =
                [this](proto::S6Message m) {
                  outbox.push_back(std::string("s6:") + proto::s6_name(m));
                  to_hss.push_back(std::move(m));
                },
            .paging_enbs = [](proto::Tac) {
              return std::vector<sim::NodeId>{501, 502};
            },
            .admission = nullptr,
            .after_procedure = nullptr,
            .on_idle = nullptr,
            .before_detach = nullptr,
        });
  }

  void s1ap(const proto::S1apMessage& m) {
    app->handle_s1ap(/*enb=*/500, m);
    engine.run();
  }
  void s11(const proto::S11Message& m) {
    app->handle_s11(m);
    engine.run();
  }
  void s6(const proto::S6Message& m) {
    app->handle_s6(m);
    engine.run();
  }

  proto::InitialUeMessage initial(proto::NasMessage nas) {
    proto::InitialUeMessage msg;
    msg.enb_id = 500;
    msg.enb_ue_id = 71;
    msg.tac = 9;
    msg.nas = std::move(nas);
    return msg;
  }
};

TEST(MmeAppUnit, ColdAttachEmitsExactSequence) {
  Harness h;
  proto::NasAttachRequest attach;
  attach.imsi = 12345;
  h.s1ap(proto::S1apMessage{h.initial(proto::NasMessage{attach})});
  // Step 1: EPS-AKA vector request.
  ASSERT_EQ(h.outbox, (std::vector<std::string>{"s6:AuthInfoRequest"}));
  EXPECT_EQ(std::get<proto::AuthInfoRequest>(h.to_hss[0]).hop_ref, 42u);

  proto::AuthInfoAnswer ans;
  ans.imsi = 12345;
  ans.rand = 7;
  ans.autn = 8;
  ans.xres = 0xFEED;
  h.s6(proto::S6Message{ans});
  ASSERT_EQ(h.outbox.back(), "s1ap:DownlinkNasTransport");
  // Copy (not reference): to_enb grows on later steps and may reallocate.
  const auto dl = std::get<proto::DownlinkNasTransport>(h.to_enb.back());
  ASSERT_TRUE(
      std::holds_alternative<proto::NasAuthenticationRequest>(dl.nas));

  proto::UplinkNasTransport auth_resp;
  auth_resp.enb_ue_id = 71;
  auth_resp.mme_ue_id = dl.mme_ue_id;
  auth_resp.nas =
      proto::NasMessage{proto::NasAuthenticationResponse{0xFEED}};
  h.s1ap(proto::S1apMessage{auth_resp});
  ASSERT_TRUE(std::holds_alternative<proto::NasSecurityModeCommand>(
      std::get<proto::DownlinkNasTransport>(h.to_enb.back()).nas));

  proto::UplinkNasTransport smc;
  smc.enb_ue_id = 71;
  smc.mme_ue_id = dl.mme_ue_id;
  smc.nas = proto::NasMessage{proto::NasSecurityModeComplete{}};
  h.s1ap(proto::S1apMessage{smc});
  // Update Location + Create Session follow the security establishment.
  ASSERT_GE(h.outbox.size(), 2u);
  EXPECT_EQ(h.outbox[h.outbox.size() - 2], "s6:UpdateLocationRequest");
  EXPECT_EQ(h.outbox.back(), "s11:CreateSessionRequest");

  proto::CreateSessionResponse csr;
  csr.mme_teid = std::get<proto::CreateSessionRequest>(h.to_sgw.back())
                     .mme_teid;
  csr.sgw_teid = proto::Teid{99};
  h.s11(proto::S11Message{csr});

  // Accept + radio context setup close the procedure.
  const auto n = h.outbox.size();
  ASSERT_GE(n, 2u);
  EXPECT_EQ(h.outbox[n - 2], "s1ap:DownlinkNasTransport");
  EXPECT_EQ(h.outbox[n - 1], "s1ap:InitialContextSetupRequest");
  const auto& accept_dl =
      std::get<proto::DownlinkNasTransport>(h.to_enb[h.to_enb.size() - 2]);
  ASSERT_TRUE(std::holds_alternative<proto::NasAttachAccept>(accept_dl.nas));
  EXPECT_EQ(
      h.app->counters().procedures[static_cast<int>(
          proto::ProcedureType::kAttach)],
      1u);
  // The context is fully indexed and active.
  auto* ctx = h.app->store().find_by_imsi(12345);
  ASSERT_NE(ctx, nullptr);
  EXPECT_TRUE(ctx->rec.active);
  EXPECT_EQ(ctx->rec.sgw_teid, proto::Teid{99});
}

TEST(MmeAppUnit, WrongResRejectsAndAbortsTransaction) {
  Harness h;
  proto::NasAttachRequest attach;
  attach.imsi = 777;
  h.s1ap(proto::S1apMessage{h.initial(proto::NasMessage{attach})});
  proto::AuthInfoAnswer ans;
  ans.imsi = 777;
  ans.xres = 1111;
  h.s6(proto::S6Message{ans});
  const auto mme_ue_id =
      std::get<proto::DownlinkNasTransport>(h.to_enb.back()).mme_ue_id;

  proto::UplinkNasTransport bad;
  bad.enb_ue_id = 71;
  bad.mme_ue_id = mme_ue_id;
  bad.nas = proto::NasMessage{proto::NasAuthenticationResponse{2222}};
  h.s1ap(proto::S1apMessage{bad});

  EXPECT_EQ(h.app->counters().auth_failures, 1u);
  ASSERT_TRUE(std::holds_alternative<proto::NasServiceReject>(
      std::get<proto::DownlinkNasTransport>(h.to_enb.back()).nas));
  EXPECT_FALSE(h.app->has_transaction(
      h.app->store().find_by_imsi(777)->rec.guti.key()));
  // No session was ever created.
  EXPECT_TRUE(h.to_sgw.empty());
}

TEST(MmeAppUnit, DownlinkDataNotificationPagesWholeTrackingArea) {
  Harness h;
  // Install a registered idle context directly.
  proto::UeContextRecord rec;
  rec.imsi = 31337;
  rec.guti = proto::Guti{1, 1, 1, 555};
  rec.tac = 9;
  rec.mme_teid = proto::Teid::make(1, 77);
  rec.sgw_teid = proto::Teid{88};
  h.app->adopt(rec, epc::ContextRole::kMaster);

  proto::DownlinkDataNotification ddn;
  ddn.mme_teid = proto::Teid::make(1, 77);
  h.s11(proto::S11Message{ddn});

  // Ack to the S-GW plus one Paging per eNodeB in the TA (hook returns 2).
  EXPECT_EQ(h.outbox, (std::vector<std::string>{
                          "s11:DownlinkDataNotificationAck", "s1ap:Paging",
                          "s1ap:Paging"}));
  EXPECT_EQ(std::get<proto::Paging>(h.to_enb[0]).m_tmsi, 555u);
  EXPECT_EQ(h.app->counters().pagings_sent, 1u);
}

TEST(MmeAppUnit, TauRebrandsForeignGuti) {
  MmeApp::Config cfg;
  cfg.mme_code = 5;  // this MME's identity
  Harness h(cfg);
  // A context transferred from MME code 2 (reassignment).
  proto::UeContextRecord rec;
  rec.imsi = 999;
  rec.guti = proto::Guti{1, 1, /*code=*/2, 10};
  h.app->adopt(rec, epc::ContextRole::kMaster);

  proto::NasTauRequest tau;
  tau.guti = rec.guti;
  h.s1ap(proto::S1apMessage{h.initial(proto::NasMessage{tau})});

  const auto& dl = std::get<proto::DownlinkNasTransport>(h.to_enb.back());
  const auto& accept = std::get<proto::NasTauAccept>(dl.nas);
  ASSERT_TRUE(accept.new_guti.has_value());
  EXPECT_EQ(accept.new_guti->mme_code, 5)
      << "an adopting MME must re-brand the GUTI so the eNodeB routes here";
  EXPECT_EQ(h.app->store().find_by_imsi(999)->rec.guti.mme_code, 5);
}

TEST(MmeAppUnit, CpuCostsChargedPerStep) {
  Harness h;
  proto::NasAttachRequest attach;
  attach.imsi = 1;
  const Duration before = h.cpu.cumulative_busy();
  h.s1ap(proto::S1apMessage{h.initial(proto::NasMessage{attach})});
  const Duration after = h.cpu.cumulative_busy();
  // First step = parse + attach_ctx from the default profile.
  const ServiceProfile profile;
  EXPECT_EQ(after - before, profile.parse + profile.attach_ctx);
}

TEST(MmeAppUnit, ServiceRequestForValidContextSkipsHss) {
  Harness h;
  proto::UeContextRecord rec;
  rec.imsi = 55;
  rec.guti = proto::Guti{1, 1, 1, 20};
  rec.sgw_teid = proto::Teid{66};
  rec.kasme = 0xABC;
  h.app->adopt(rec, epc::ContextRole::kMaster);

  proto::NasServiceRequest sr;
  sr.mme_code = 1;
  sr.m_tmsi = 20;
  h.s1ap(proto::S1apMessage{h.initial(proto::NasMessage{sr})});
  // Straight to bearer re-activation: no HSS traffic at all.
  EXPECT_EQ(h.outbox, (std::vector<std::string>{"s11:ModifyBearerRequest"}));
}

}  // namespace
}  // namespace scale::mme

// Geo eviction (§4.5.2 DC-level (v)): a DC whose external share exceeds its
// shrunk budget evicts lowest-wᵢ external state and asks the owning DCs to
// reduce their share.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "testbed/testbed.h"

namespace scale {
namespace {

using epc::ContextRole;
using testbed::Testbed;

struct EvictWorld {
  Testbed tb;
  std::vector<Testbed::Site*> sites;
  std::vector<std::unique_ptr<core::ScaleCluster>> clusters;

  EvictWorld() {
    for (std::uint32_t dc = 0; dc < 2; ++dc) {
      sites.push_back(&tb.add_site(1, static_cast<proto::Tac>(dc + 1),
                                   Duration::ms(1.0), dc));
      core::ScaleCluster::Config cfg;
      cfg.home_dc = dc;
      cfg.mme_group = static_cast<std::uint16_t>(50 + dc);
      cfg.first_vm_code = static_cast<std::uint8_t>(1 + dc * 100);
      cfg.initial_mmps = 2;
      cfg.geo.budget_fraction = 0.5;
      cfg.geo.gossip_interval = Duration::ms(200.0);
      cfg.provisioner.devices_per_vm = 100;
      cfg.provisioner.min_vms = 2;
      cfg.provisioner.max_vms = 2;
      clusters.push_back(std::make_unique<core::ScaleCluster>(
          tb.fabric(), sites[dc]->sgw->node(), tb.hss().node(), cfg));
      clusters[dc]->connect_enb(*sites[dc]->enbs[0]);
      tb.assign_dc(clusters[dc]->mlb().node(), dc);
      for (auto& mmp : clusters[dc]->mmps()) tb.assign_dc(mmp->node(), dc);
    }
    for (int a = 0; a < 2; ++a)
      for (int b = 0; b < 2; ++b)
        if (a != b)
          clusters[static_cast<std::size_t>(a)]->geo().add_peer(
              static_cast<std::uint32_t>(b),
              clusters[static_cast<std::size_t>(b)]->mlb().node(),
              Duration::ms(15.0));
    for (auto& c : clusters) c->start();
  }

  std::size_t externals_at(std::size_t dc) {
    std::size_t n = 0;
    for (auto& mmp : clusters[dc]->mmps())
      n += mmp->app().store().count(ContextRole::kExternal);
    return n;
  }

  std::size_t marked_at(std::size_t dc) {
    std::size_t n = 0;
    clusters[dc]->for_each_master([&](mme::UeContext& ctx) {
      if (ctx.rec.external_dc >= 0) ++n;
    });
    return n;
  }
};

TEST(GeoEvict, BudgetShrinkEvictsAndNotifiesOwners) {
  EvictWorld w;
  w.tb.make_ues(*w.sites[0], 60, {0.9});
  w.tb.register_all(*w.sites[0], Duration::sec(4.0), Duration::sec(8.0));
  w.clusters[0]->for_each_master(
      [](mme::UeContext& ctx) { ctx.rec.access_freq = 0.9; });
  w.tb.run_for(Duration::sec(1.0));
  w.clusters[0]->run_epoch();
  w.tb.run_for(Duration::sec(2.0));

  const std::size_t placed = w.externals_at(1);
  ASSERT_GT(placed, 20u);
  ASSERT_EQ(w.marked_at(0), placed);

  // DC1 drastically shrinks its external budget and enforces it.
  w.clusters[1]->set_geo_budget_fraction(0.05);  // S_m: 100 → 10
  w.clusters[1]->run_epoch();
  w.tb.run_for(Duration::sec(2.0));

  EXPECT_LE(w.externals_at(1), 11u);
  EXPECT_LE(w.clusters[1]->geo().used(), 10.5);
  // The owning DC dropped the corresponding external markers.
  EXPECT_LT(w.marked_at(0), placed);
}

TEST(GeoEvict, NoEvictionWithinBudget) {
  EvictWorld w;
  w.tb.make_ues(*w.sites[0], 30, {0.9});
  w.tb.register_all(*w.sites[0], Duration::sec(3.0), Duration::sec(8.0));
  w.clusters[0]->for_each_master(
      [](mme::UeContext& ctx) { ctx.rec.access_freq = 0.9; });
  w.tb.run_for(Duration::sec(1.0));
  w.clusters[0]->run_epoch();
  w.tb.run_for(Duration::sec(2.0));
  const std::size_t placed = w.externals_at(1);
  ASSERT_GT(placed, 0u);

  // Re-running an epoch with ample budget keeps every external replica.
  w.clusters[1]->run_epoch();
  w.tb.run_for(Duration::sec(2.0));
  EXPECT_EQ(w.externals_at(1), placed);
}

TEST(GeoEvict, LowestAccessEvictedFirst) {
  EvictWorld w;
  w.tb.make_ues(*w.sites[0], 40, {0.9});
  w.tb.register_all(*w.sites[0], Duration::sec(3.0), Duration::sec(8.0));
  // Half hot, half lukewarm — all above the geo threshold.
  std::size_t i = 0;
  w.clusters[0]->for_each_master([&i](mme::UeContext& ctx) {
    ctx.rec.access_freq = (i++ % 2 == 0) ? 0.95 : 0.55;
  });
  w.tb.run_for(Duration::sec(1.0));
  w.clusters[0]->run_epoch();
  w.tb.run_for(Duration::sec(2.0));
  ASSERT_GT(w.externals_at(1), 10u);

  w.clusters[1]->set_geo_budget_fraction(0.04);  // S_m: 100 → 8
  w.clusters[1]->run_epoch();
  w.tb.run_for(Duration::sec(2.0));

  // The survivors at DC1 skew hot.
  double min_survivor = 1.0;
  std::size_t survivors = 0;
  for (auto& mmp : w.clusters[1]->mmps()) {
    mmp->app().store().for_each([&](mme::UeContext& ctx) {
      if (ctx.role == ContextRole::kExternal) {
        ++survivors;
        min_survivor = std::min(min_survivor, ctx.rec.access_freq);
      }
    });
  }
  ASSERT_GT(survivors, 0u);
  EXPECT_GT(min_survivor, 0.6) << "hot replicas must outlive lukewarm ones";
}

}  // namespace
}  // namespace scale

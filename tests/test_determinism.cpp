// Determinism: the whole stack — PRNG, event ordering, CPU queues, routing
// — must produce bit-identical trajectories for identical seeds, and
// different ones for different seeds. Every benchmark number rests on this.
#include <gtest/gtest.h>

#include <iomanip>
#include <sstream>

#include "core/cluster.h"
#include "hash/md5.h"
#include "testbed/testbed.h"
#include "workload/arrivals.h"

namespace scale {
namespace {

using testbed::Testbed;

// Run a moderately busy SCALE scenario and produce a fingerprint of
// everything observable. `threads` = 0 runs the classic single-engine
// world; >= 1 the ShardedSim world (DESIGN.md §10), which must replay the
// exact same trajectory.
std::string run_fingerprint(std::uint64_t seed, unsigned threads = 0) {
  Testbed::Config tcfg;
  tcfg.seed = seed;
  tcfg.threads = threads;
  Testbed tb(tcfg);
  auto& site = tb.add_site(2);
  core::ScaleCluster::Config cfg;
  cfg.initial_mmps = 3;
  cfg.seed = seed * 31;
  cfg.vm_template.app.profile.inactivity_timeout = Duration::ms(800.0);
  core::ScaleCluster cluster(tb.fabric(), site.sgw->node(), tb.hss().node(),
                             cfg);
  for (auto& enb : site.enbs) cluster.connect_enb(*enb);

  auto ues = tb.make_ues(site, 300, {0.8});
  tb.register_all(site, Duration::sec(5.0), Duration::sec(4.0));
  workload::OpenLoopDriver::Config drv;
  drv.rate_per_sec = 400.0;
  drv.mix.service_request = 0.5;
  drv.mix.tau = 0.3;
  drv.mix.handover = 0.2;
  drv.seed = seed + 1;
  workload::OpenLoopDriver driver(tb.engine(), ues, drv);
  driver.set_handover_targets(site.enb_ptrs());
  driver.start(tb.engine().now() + Duration::sec(6.0));
  cluster.run_epoch();
  tb.run_for(Duration::sec(8.0));

  std::ostringstream os;
  os << tb.engine().events_processed() << '|'
     << tb.network().messages_sent() << '|' << tb.network().bytes_sent()
     << '|' << driver.issued() << '|' << cluster.total_requests() << '|'
     << cluster.mlb().initial_routed() << '|'
     << cluster.mlb().sticky_routed();
  for (auto& mmp : cluster.mmps())
    os << '|' << mmp->requests_handled() << ':'
       << mmp->app().store().size() << ':' << mmp->replicas_pushed();
  for (const auto& ue : site.ues) {
    os << '|' << (ue->registered() ? 1 : 0) << (ue->connected() ? 1 : 0);
    if (ue->guti()) os << ue->guti()->m_tmsi;
  }
  if (tb.delays().total_count() > 0) {
    const auto merged = tb.delays().merged();
    os << '|' << merged.count() << ':' << merged.percentile(0.5) << ':'
       << merged.percentile(0.99);
  }
  return os.str();
}

TEST(Determinism, IdenticalSeedsIdenticalTrajectories) {
  const std::string a = run_fingerprint(12345);
  const std::string b = run_fingerprint(12345);
  EXPECT_EQ(a, b);
}

TEST(Determinism, DifferentSeedsDiverge) {
  EXPECT_NE(run_fingerprint(1), run_fingerprint(2));
}

TEST(Determinism, FingerprintGoldenDigest) {
  // Pins the complete same-seed trajectory, not just within-process
  // equality: any change to event ordering, routing, RNG draw order, or
  // container iteration moves this digest. Baseline set when
  // UeContextStore::for_each/keys_if switched from hash order to sorted
  // GUTI-key order (ScaleLint rule L2) — the trajectory is hash-layout-free
  // from then on, so the digest is stable by construction. If a PR changes
  // behavior *intentionally*, re-baseline this constant and say so in
  // CHANGES.md; if it moved and you didn't expect it, you broke replay.
  const hash::Md5Digest d = hash::Md5::digest(run_fingerprint(12345));
  std::ostringstream hex;
  for (const auto byte : d)
    hex << std::hex << std::setw(2) << std::setfill('0')
        << static_cast<unsigned>(byte);
  EXPECT_EQ(hex.str(), "192a5ab5df0e500cc793e8d5684cd1b6");
}

TEST(Determinism, ShardedFingerprint) {
  // The ShardedSim acceptance gate (ISSUE 8): the sharded world — at any
  // worker count — replays the unsharded golden trajectory byte-for-byte.
  // This scenario is single-DC, so it maps to one shard and every thread
  // count exercises the same windows; the multi-DC cross-thread cases live
  // in test_sharded.cpp.
  for (const unsigned threads : {1u, 2u, 4u}) {
    const hash::Md5Digest d =
        hash::Md5::digest(run_fingerprint(12345, threads));
    std::ostringstream hex;
    for (const auto byte : d)
      hex << std::hex << std::setw(2) << std::setfill('0')
          << static_cast<unsigned>(byte);
    EXPECT_EQ(hex.str(), "192a5ab5df0e500cc793e8d5684cd1b6")
        << "threads=" << threads;
  }
}

TEST(Determinism, RngSequenceStable) {
  // Golden values: changing the PRNG would silently re-randomize every
  // benchmark. If this fails intentionally, re-baseline EXPERIMENTS.md.
  Rng rng(0x5CA1E);
  EXPECT_EQ(rng.next_u64(), 0x7FC813E5AC22C081ull);
  EXPECT_EQ(rng.next_u64(), 0x141B44E4D2B9CB47ull);
  EXPECT_EQ(rng.next_below(1000), 735ull);
}

TEST(Determinism, Md5RingPlacementStable) {
  // GUTI → ring-position goldens (MD5 is standardized; these pin the
  // key-packing too).
  const proto::Guti g{310, 17, 3, 0xBEEF01};
  EXPECT_EQ(hash::md5_u64(g.key()), hash::md5_u64(g.key()));
  hash::ConsistentHashRing ring(hash::ConsistentHashRing::Config{5, true});
  for (hash::RingNodeId n = 1; n <= 10; ++n) ring.add_node(n);
  EXPECT_EQ(ring.owner(g.key()), ring.owner(g.key()));
  // Placement is insensitive to unrelated process state.
  const auto first = ring.preference_list(g.key(), 3);
  hash::ConsistentHashRing ring2(hash::ConsistentHashRing::Config{5, true});
  for (hash::RingNodeId n = 10; n >= 1; --n) ring2.add_node(n);
  EXPECT_EQ(ring2.preference_list(g.key(), 3), first);
}

}  // namespace
}  // namespace scale

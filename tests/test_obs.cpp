// ScaleScope observability layer: Json document model, MetricsRegistry
// naming/enumeration/snapshot-diff, Tracer span bookkeeping (including
// retransmission annotations from the reliable shim), Report schema, and
// the determinism contract — two same-seed runs must produce byte-identical
// metric JSON and trace JSON.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/check.h"
#include "epc/fabric.h"
#include "epc/reliable.h"
#include "mme/pool.h"
#include "obs/json.h"
#include "obs/registry.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "proto/s11.h"
#include "sim/engine.h"
#include "sim/network.h"
#include "testbed/testbed.h"

namespace scale {
namespace {

// ----------------------------------------------------------------- Json

TEST(ObsJson, RoundTripsThroughParse) {
  obs::Json doc = obs::Json::object();
  doc.set("name", "mmp.3.queue_depth");
  doc.set("count", 42);
  doc.set("mean", 1.5);
  doc.set("empty", obs::Json(nullptr));
  obs::Json arr = obs::Json::array();
  arr.push_back(true);
  arr.push_back("two\nlines \"quoted\"");
  doc.set("arr", std::move(arr));

  const std::string text = doc.dump();
  std::string error;
  const auto parsed = obs::Json::parse(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->dump(), text);
  EXPECT_EQ(parsed->find("count")->as_int(), 42);
  EXPECT_EQ(parsed->find("arr")->elements()[1].as_string(),
            "two\nlines \"quoted\"");
}

TEST(ObsJson, NonFiniteNumbersSerializeAsNull) {
  obs::Json doc = obs::Json::object();
  doc.set("nan", std::nan(""));
  EXPECT_EQ(doc.dump(), "{\"nan\":null}");
}

TEST(ObsJson, MembersKeepInsertionOrderAndSetReplaces) {
  obs::Json doc = obs::Json::object();
  doc.set("z", 1);
  doc.set("a", 2);
  doc.set("z", 3);  // replaces in place, does not reorder
  EXPECT_EQ(doc.dump(), "{\"z\":3,\"a\":2}");
}

// ------------------------------------------------------------- Registry

TEST(ObsRegistry, RejectsMalformedNames) {
  obs::MetricsRegistry reg;
  EXPECT_THROW(reg.inc(""), CheckError);
  EXPECT_THROW(reg.inc(".leading"), CheckError);
  EXPECT_THROW(reg.inc("trailing."), CheckError);
  EXPECT_THROW(reg.inc("spa ce"), CheckError);
  reg.inc("mlb.redirects");  // valid: letters, digits, '.', '_', '-'
  EXPECT_EQ(reg.counter("mlb.redirects"), 1u);
}

TEST(ObsRegistry, EnumerationIsSortedRegardlessOfInsertion) {
  obs::MetricsRegistry reg;
  reg.inc("mmp.3.queue_depth");
  reg.set("mlb.utilization", 0.5);
  reg.inc("engine.events");
  reg.observe("mmp.1.delay_ms", 4.0);
  const std::vector<std::string> names = reg.names();
  ASSERT_EQ(names.size(), 4u);
  EXPECT_EQ(names[0], "engine.events");
  EXPECT_EQ(names[1], "mlb.utilization");
  EXPECT_EQ(names[2], "mmp.1.delay_ms");
  EXPECT_EQ(names[3], "mmp.3.queue_depth");
  const auto mmp = reg.names_with_prefix("mmp.");
  ASSERT_EQ(mmp.size(), 2u);
  EXPECT_EQ(mmp[0], "mmp.1.delay_ms");
  EXPECT_EQ(mmp[1], "mmp.3.queue_depth");
}

TEST(ObsRegistry, KindsAreSticky) {
  obs::MetricsRegistry reg;
  reg.inc("a.counter");
  EXPECT_THROW(reg.set("a.counter", 1.0), CheckError);
  EXPECT_THROW(reg.observe("a.counter", 1.0), CheckError);
}

TEST(ObsRegistry, HistogramSnapshotDiffSubtractsCounts) {
  obs::MetricsRegistry reg;
  reg.observe("ue.delay_ms", 10.0);
  reg.observe("ue.delay_ms", 20.0);
  reg.inc("net.messages", 5);
  const obs::MetricsRegistry::Snapshot before = reg.snapshot();

  for (int i = 0; i < 8; ++i) reg.observe("ue.delay_ms", 100.0);
  reg.inc("net.messages", 3);
  const obs::MetricsRegistry::Snapshot after = reg.snapshot();

  const obs::MetricsRegistry::Snapshot delta = after.diff(before);
  const auto& delay = delta.values.at("ue.delay_ms");
  EXPECT_EQ(delay.count, 8u);
  EXPECT_DOUBLE_EQ(delay.sum, 800.0);
  EXPECT_DOUBLE_EQ(delay.mean, 100.0);
  EXPECT_EQ(delta.values.at("net.messages").counter, 3u);
  // The interval view keeps the later percentile summary.
  EXPECT_DOUBLE_EQ(delay.p99, after.values.at("ue.delay_ms").p99);
}

TEST(ObsRegistry, JsonExportIsSortedAndTyped) {
  obs::MetricsRegistry reg;
  reg.set("b.gauge", 2.5);
  reg.inc("a.counter", 7);
  const std::string text = reg.to_json().dump();
  // Members follow sorted metric-name order, not insertion order.
  EXPECT_LT(text.find("a.counter"), text.find("b.gauge"));
  EXPECT_NE(text.find("\"counter\""), std::string::npos);
  EXPECT_NE(text.find("\"gauge\""), std::string::npos);
}

// --------------------------------------------------------------- Tracer

TEST(ObsTracer, SpansNestAndBalance) {
  obs::Tracer tr;
  tr.set_track_name(1, "mmp.1");
  tr.begin(1, "attach", Time::from_sec(1.0));
  tr.begin(1, "auth", Time::from_sec(1.1));
  EXPECT_EQ(tr.open_spans(1), 2u);
  tr.end(1, Time::from_sec(1.2));
  tr.end(1, Time::from_sec(1.5));
  EXPECT_EQ(tr.open_spans(1), 0u);
  EXPECT_THROW(tr.end(1, Time::from_sec(2.0)), CheckError);  // nothing open
  EXPECT_EQ(tr.count_named("attach"), 1u);
  EXPECT_EQ(tr.event_count(), 4u);
}

TEST(ObsTracer, CurrentInstallRestores) {
  EXPECT_EQ(obs::Tracer::current(), nullptr);
  {
    obs::Tracer tr;
    obs::Tracer* prev = obs::Tracer::install(&tr);
    EXPECT_EQ(prev, nullptr);
    EXPECT_EQ(obs::Tracer::current(), &tr);
    obs::Tracer::install(prev);
  }
  EXPECT_EQ(obs::Tracer::current(), nullptr);
}

// Retransmission annotations: a link-down window forces the reliable shim
// to retransmit; with a tracer installed those attempts surface as
// "rto_retransmit" instants and the hop events still record exactly one
// application-level delivery.
struct TracedRelNode final : epc::Endpoint {
  epc::Fabric& fabric;
  sim::NodeId node;
  epc::ReliableChannel rel;
  int delivered = 0;

  explicit TracedRelNode(epc::Fabric& f)
      : fabric(f), node(f.add_endpoint(this)), rel(f, node) {}
  ~TracedRelNode() override { fabric.remove_endpoint(node); }

  void receive(sim::NodeId from, const proto::Pdu& pdu) override {
    if (rel.unwrap(from, pdu) != nullptr) ++delivered;
  }
};

TEST(ObsTracer, RetransmissionAnnotationsUnderLinkFault) {
  sim::Engine engine;
  sim::Network net{Duration::us(500), 42};
  epc::Fabric fabric{engine, net};
  epc::TransportConfig t;
  t.reliable = true;
  fabric.set_transport(t);

  obs::Tracer tr;
  obs::Tracer* prev = obs::Tracer::install(&tr);
  TracedRelNode a(fabric), b(fabric);
  net.schedule_link_down(a.node, b.node, Time::zero(), Time::from_sec(1.0));
  proto::CreateSessionRequest req;
  req.imsi = 77;
  a.rel.send(b.node, proto::make_pdu(req));
  engine.run_until(Time::from_sec(30.0));
  obs::Tracer::install(prev);

  EXPECT_EQ(b.delivered, 1);
  EXPECT_GE(tr.count_named("rto_retransmit"), 1u);
  EXPECT_GE(tr.count_named("fault"), 1u);  // the link-down drops themselves
  // The trace document parses and is a flat event array.
  std::string error;
  const auto doc = obs::Json::parse(tr.dump(), &error);
  ASSERT_TRUE(doc.has_value()) << error;
  EXPECT_TRUE(doc->find("traceEvents")->is_array());
}

// ---------------------------------------------------------------- Report

TEST(ObsReport, JsonValidatesAgainstSchema) {
  obs::Report rep("unit_bench", "schema round trip");
  auto& sec = rep.section("numbers");
  sec.columns({"x", "y"});
  sec.row({1.0, 2.0});
  sec.row("labeled", {std::nan("")});
  PercentileSampler s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  sec.cdf("delays", s, 4);
  sec.note("a note");
  rep.note("top-level note");
  obs::MetricsRegistry reg;
  reg.inc("c", 3);
  rep.attach_metrics(reg);

  const obs::Json doc = rep.to_json();
  EXPECT_TRUE(obs::validate_bench_json(doc).empty());
  // NaN cells serialize as null and still validate.
  const auto reparsed = obs::Json::parse(doc.pretty());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_TRUE(obs::validate_bench_json(*reparsed).empty());
}

TEST(ObsReport, ValidatorFlagsBrokenDocuments) {
  const auto bad = obs::Json::parse(R"({"schema":"scale-bench-v1",
      "bench":"", "title":"t", "sections":[{"name":1}]})");
  ASSERT_TRUE(bad.has_value());
  const auto problems = obs::validate_bench_json(*bad);
  EXPECT_GE(problems.size(), 2u);  // empty bench + non-string section name
}

// ----------------------------------------------------- determinism golden

struct GoldenRun {
  std::string metrics_json;
  std::string trace_json;
};

// A small end-to-end scenario: faulty links + reliable transport + real
// UE attaches, with both the tracer and the registry active.
GoldenRun golden_run() {
  testbed::Testbed::Config cfg;
  cfg.seed = 7;
  cfg.transport.reliable = true;
  obs::Tracer tr;
  obs::Tracer* prev = obs::Tracer::install(&tr);
  testbed::Testbed tb(cfg);
  auto& site = tb.add_site(2);
  mme::MmePool::Config pool_cfg;
  pool_cfg.node_template.sgw = site.sgw->node();
  pool_cfg.node_template.hss = tb.hss().node();
  mme::MmePool pool(tb.fabric(), pool_cfg);
  for (auto& enb : site.enbs) pool.connect_enb(*enb);
  sim::LinkFaults f;
  f.drop_prob = 0.1;
  tb.network().set_global_faults(f);
  tb.make_ues(site, 40, {0.5});
  tb.register_all(site, Duration::sec(5.0), Duration::sec(5.0));
  obs::Tracer::install(prev);

  obs::MetricsRegistry reg;
  tb.export_metrics(reg);
  pool.export_metrics(reg, "mme");
  GoldenRun out;
  out.metrics_json = reg.to_json().pretty();
  out.trace_json = tr.dump();
  return out;
}

TEST(ObsDeterminism, SameSeedRunsAreByteIdentical) {
  const GoldenRun first = golden_run();
  const GoldenRun second = golden_run();
  EXPECT_EQ(first.metrics_json, second.metrics_json);
  EXPECT_EQ(first.trace_json, second.trace_json);
  // The run actually exercised the instrumented paths.
  EXPECT_NE(first.trace_json.find("\"attach\""), std::string::npos);
  EXPECT_NE(first.metrics_json.find("ue.delay_ms.attach"), std::string::npos);
}

// Typed DelayRecorder call sites land in the same buckets as the legacy
// string path (the fingerprint depends on it).
TEST(ObsDeterminism, TypedDelayRecorderSharesStringBuckets) {
  sim::DelayRecorder rec;
  rec.record(proto::ProcedureType::kAttach, Duration::ms(5.0));
  rec.record("attach", Duration::ms(7.0));
  ASSERT_TRUE(rec.has("attach"));
  ASSERT_TRUE(rec.has(proto::ProcedureType::kAttach));
  EXPECT_EQ(rec.bucket("attach").count(), 2u);
  EXPECT_EQ(proto::parse_procedure_name("attach"),
            proto::ProcedureType::kAttach);
  EXPECT_FALSE(proto::parse_procedure_name("bogus").has_value());
}

}  // namespace
}  // namespace scale

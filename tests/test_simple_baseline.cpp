// SIMPLE baseline (E3): per-device routing table at the LB, round-robin
// assignment, whole-VM pairwise replication to one buddy.
#include <gtest/gtest.h>

#include "mme/simple.h"
#include "testbed/testbed.h"
#include "workload/arrivals.h"

namespace scale {
namespace {

using testbed::Testbed;

struct SimpleWorld {
  Testbed tb;
  Testbed::Site* site;
  std::unique_ptr<mme::SimpleLb> lb;
  std::vector<std::unique_ptr<mme::SimpleVm>> vms;

  explicit SimpleWorld(std::size_t vm_count) {
    site = &tb.add_site(1);
    mme::SimpleLb::Config lb_cfg;
    lb = std::make_unique<mme::SimpleLb>(tb.fabric(), lb_cfg);
    for (std::size_t i = 0; i < vm_count; ++i) {
      mme::ClusterVm::Config vm_cfg;
      vm_cfg.sgw = site->sgw->node();
      vm_cfg.hss = tb.hss().node();
      vm_cfg.app.assign_guti_locally = false;
      vm_cfg.app.mme_code = lb_cfg.mme_code;
      vm_cfg.app.vm_code = static_cast<std::uint8_t>(i + 1);
      vms.push_back(std::make_unique<mme::SimpleVm>(tb.fabric(), vm_cfg));
      lb->add_vm(*vms.back());
    }
    site->enb(0).add_mme(lb->node(), lb_cfg.mme_code, 1.0);
  }
};

TEST(SimpleBaseline, AttachThroughLbCompletes) {
  SimpleWorld w(3);
  epc::Ue& ue = w.tb.make_ue(*w.site, 0, 0.5);
  EXPECT_TRUE(ue.attach());
  w.tb.run_for(Duration::sec(2.0));
  EXPECT_TRUE(ue.registered());
  EXPECT_TRUE(ue.connected());
  EXPECT_EQ(w.lb->routing_table_size(), 1u);
}

TEST(SimpleBaseline, RoundRobinSpreadsDevicesUniformly) {
  SimpleWorld w(3);
  w.tb.make_ues(*w.site, 90, {0.5});
  w.tb.register_all(*w.site, Duration::sec(4.0), Duration::sec(6.0));

  // ~30 masters per VM (round robin), modulo re-attach retries.
  for (auto& vm : w.vms) {
    const auto masters = vm->app().store().count(epc::ContextRole::kMaster);
    EXPECT_NEAR(static_cast<double>(masters), 30.0, 8.0);
  }
  EXPECT_EQ(w.lb->routing_table_size(), 90u);
}

TEST(SimpleBaseline, EveryContextReplicatedToBuddyOnly) {
  SimpleWorld w(3);
  w.tb.make_ues(*w.site, 30, {0.5});
  w.tb.register_all(*w.site, Duration::sec(3.0), Duration::sec(10.0));

  // Pairwise replication: VM v's masters appear as replicas ONLY at v+1.
  for (std::size_t v = 0; v < w.vms.size(); ++v) {
    auto& vm = *w.vms[v];
    auto& buddy = *w.vms[(v + 1) % w.vms.size()];
    auto& other = *w.vms[(v + 2) % w.vms.size()];
    const auto master_keys = vm.app().store().keys_if(
        [](const mme::UeContext& c) {
          return c.role == epc::ContextRole::kMaster;
        });
    ASSERT_FALSE(master_keys.empty());
    for (std::uint64_t key : master_keys) {
      EXPECT_TRUE(buddy.app().store().contains(key))
          << "master of VM" << v << " missing at buddy";
      EXPECT_FALSE(other.app().store().contains(key))
          << "SIMPLE must not spread replicas beyond the buddy";
    }
  }
}

TEST(SimpleBaseline, RoutingTableGrowsWithPopulation) {
  // The scalability liability SCALE removes: one LB entry per device.
  SimpleWorld w(2);
  w.tb.make_ues(*w.site, 50, {0.5});
  w.tb.register_all(*w.site, Duration::sec(3.0), Duration::sec(5.0));
  EXPECT_EQ(w.lb->routing_table_size(), 50u);
  w.tb.make_ues(*w.site, 25, {0.5});
  w.tb.register_all(*w.site, Duration::sec(2.0), Duration::sec(5.0));
  EXPECT_EQ(w.lb->routing_table_size(), 75u);
}

TEST(SimpleBaseline, ServiceRequestAfterIdleServedFromState) {
  SimpleWorld w(2);
  epc::Ue& ue = w.tb.make_ue(*w.site, 0, 0.5);
  ue.attach();
  w.tb.run_for(Duration::sec(8.0));  // attach + idle
  ASSERT_TRUE(ue.registered());
  ASSERT_FALSE(ue.connected());
  EXPECT_TRUE(ue.service_request());
  w.tb.run_for(Duration::sec(2.0));
  EXPECT_TRUE(ue.connected());
  EXPECT_EQ(ue.completed(proto::ProcedureType::kServiceRequest), 1u);
}

}  // namespace
}  // namespace scale

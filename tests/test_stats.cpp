#include <gtest/gtest.h>

#include "common/check.h"

#include <cmath>

#include "common/stats.h"

namespace scale {
namespace {

TEST(OnlineStats, MeanVarianceMinMax) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, EmptyMinMaxAreNaN) {
  OnlineStats s;
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(OnlineStats, MergeEqualsSingleStream) {
  OnlineStats a, b, all;
  for (int i = 0; i < 50; ++i) {
    const double x = std::sin(i) * 10;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(PercentileSampler, ExactPercentiles) {
  PercentileSampler s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
}

TEST(PercentileSampler, EmptyThrows) {
  PercentileSampler s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW((void)s.percentile(0.5), CheckError);
}

TEST(PercentileSampler, ReservoirKeepsCapAndApproximatesQuantiles) {
  PercentileSampler s(1000);
  for (int i = 0; i < 100000; ++i) s.add(i % 1000);
  EXPECT_EQ(s.samples().size(), 1000u);
  EXPECT_EQ(s.count(), 100000u);
  EXPECT_NEAR(s.percentile(0.5), 500.0, 60.0);
}

TEST(PercentileSampler, CdfIsMonotone) {
  PercentileSampler s;
  for (int i = 0; i < 500; ++i) s.add((i * 37) % 100);
  const auto cdf = s.cdf(20);
  ASSERT_EQ(cdf.size(), 20u);
  for (std::size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].first, cdf[i - 1].first);
    EXPECT_GE(cdf[i].second, cdf[i - 1].second);
  }
  EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(PercentileSampler, ClearResets) {
  PercentileSampler s;
  s.add(5);
  s.clear();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
}

TEST(Histogram, BinningAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-3.0);   // clamps to first bin
  h.add(100.0);  // clamps to last bin
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(9), 2u);
}

TEST(Histogram, QuantileInterpolation) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.99), 99.0, 1.5);
}

TEST(Histogram, BinEdges) {
  Histogram h(10.0, 20.0, 5);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 10.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 12.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(4), 20.0);
}

TEST(Ewma, FirstSamplePrimes) {
  Ewma e(0.5);
  EXPECT_FALSE(e.primed());
  e.update(10.0);
  EXPECT_TRUE(e.primed());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ewma, ConvergesGeometrically) {
  Ewma e(0.5);
  e.update(0.0);
  e.update(16.0);  // 8
  e.update(16.0);  // 12
  e.update(16.0);  // 14
  EXPECT_DOUBLE_EQ(e.value(), 14.0);
}

TEST(Ewma, MatchesPaperLoadEstimatorForm) {
  // L̄(t) = α·L(t−1) + (1−α)·L̄(t−1), α = 0.3
  Ewma e(0.3);
  e.update(100);
  const double expected = 0.3 * 40 + 0.7 * 100;
  EXPECT_DOUBLE_EQ(e.update(40), expected);
}

TEST(Ewma, InvalidAlphaRejected) {
  EXPECT_THROW(Ewma(0.0), CheckError);
  EXPECT_THROW(Ewma(1.5), CheckError);
}

TEST(TimeSeries, AppendAndQuery) {
  TimeSeries ts;
  ts.add(Time::from_us(0), 0.1);
  ts.add(Time::from_us(100), 0.5);
  ts.add(Time::from_us(200), 0.3);
  EXPECT_EQ(ts.size(), 3u);
  EXPECT_DOUBLE_EQ(ts.max_value(), 0.5);
  EXPECT_NEAR(ts.mean_value(), 0.3, 1e-12);
  EXPECT_DOUBLE_EQ(ts.value_at(Time::from_us(150)), 0.5);
  EXPECT_DOUBLE_EQ(ts.value_at(Time::from_us(250)), 0.3);
  EXPECT_DOUBLE_EQ(
      ts.mean_in(Time::from_us(50), Time::from_us(250)), 0.4);
}

TEST(TimeSeries, RejectsOutOfOrderAppend) {
  TimeSeries ts;
  ts.add(Time::from_us(100), 1.0);
  EXPECT_THROW(ts.add(Time::from_us(50), 2.0), CheckError);
}

TEST(FormatCdf, ContainsHeaderAndRows) {
  const std::string out =
      format_cdf({{1.0, 0.5}, {2.0, 1.0}}, "delay", "F");
  EXPECT_NE(out.find("delay\tF"), std::string::npos);
  EXPECT_NE(out.find("2\t1"), std::string::npos);
}

}  // namespace
}  // namespace scale

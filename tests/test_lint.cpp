// ScaleLint self-test: runs the scale_lint binary over the fixture tree in
// tests/lint_fixtures/ and asserts exact finding counts and exit codes per
// rule (DESIGN.md §6). The fixtures mirror real-tree paths (src/sim, src/
// proto, bench, ...) so the path-scoping logic is exercised, not bypassed.
//
// The binary path and fixture root are injected by CMake as compile
// definitions; the fixtures are scanned, never compiled.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <string>

namespace {

struct LintRun {
  int exit_code = -1;
  std::string output;

  std::size_t count(const std::string& needle) const {
    std::size_t n = 0;
    for (std::size_t at = output.find(needle); at != std::string::npos;
         at = output.find(needle, at + needle.size()))
      ++n;
    return n;
  }
};

/// Run scale_lint with the given arguments, capturing stdout + exit code.
LintRun run_lint(const std::string& args) {
  const std::string cmd =
      std::string(SCALE_LINT_BIN) + " " + args + " 2>/dev/null";
  LintRun r;
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "cannot spawn: " << cmd;
  if (pipe == nullptr) return r;
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) r.output += buf;
  const int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

const std::string kFixtures = std::string("--root ") + SCALE_LINT_FIXTURES;

TEST(ScaleLint, FixtureTreeYieldsExactPerRuleCounts) {
  const LintRun r = run_lint(kFixtures + " src bench");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(r.count("[L1]"), 6u) << r.output;
  EXPECT_EQ(r.count("[L2]"), 6u) << r.output;
  EXPECT_EQ(r.count("[L3]"), 3u) << r.output;
  EXPECT_EQ(r.count("[L4]"), 3u) << r.output;
  EXPECT_EQ(r.count("[L5]"), 2u) << r.output;
}

TEST(ScaleLint, PositiveFixturesFlagTheRightFiles) {
  const LintRun r = run_lint(kFixtures + " src bench");
  EXPECT_EQ(r.count("src/sim/l1_bad.cpp"), 6u) << r.output;
  EXPECT_EQ(r.count("src/sim/l2_bad.cpp"), 2u) << r.output;
  EXPECT_EQ(r.count("src/obs/l2_bad.cpp"), 2u) << r.output;
  EXPECT_EQ(r.count("src/core/l2_bad.cpp"), 2u) << r.output;
  EXPECT_EQ(r.count("src/proto/l3_bad.h"), 3u) << r.output;
  EXPECT_EQ(r.count("src/mme/l4_bad.cpp"), 3u) << r.output;
  EXPECT_EQ(r.count("src/epc/l5_bad.cpp"), 2u) << r.output;
}

TEST(ScaleLint, NegativeFixturesAreCleanAndExitZero) {
  const LintRun r =
      run_lint(kFixtures +
               " src/common/l1_ok.cpp src/sim/l2_ok.cpp src/core/l2_ok.cpp"
               " src/proto/l3_ok.h"
               " src/mme/l4_ok.cpp src/epc/l5_ok.cpp bench");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_TRUE(r.output.empty()) << r.output;
}

TEST(ScaleLint, OutOfScopeIterationIsNotFlagged) {
  // Identical code to l2_bad.cpp, but under bench/ — outside rule L2's
  // determinism-critical directory set.
  const LintRun r = run_lint(kFixtures + " bench/l2_scope_ok.cpp");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(ScaleLint, MissingExplicitPathIsAUsageError) {
  const LintRun r = run_lint(kFixtures + " no/such/dir");
  EXPECT_EQ(r.exit_code, 2);
}

TEST(ScaleLint, RealTreeIsClean) {
  // The acceptance bar for every PR: the production tree has zero findings.
  const LintRun r =
      run_lint(std::string("--root ") + SCALE_REPO_ROOT +
               " src bench tests examples tools");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_TRUE(r.output.empty()) << r.output;
}

}  // namespace

// ScaleLint self-test: runs the scale_lint binary over the fixture tree in
// tests/lint_fixtures/ and asserts exact finding counts and exit codes per
// rule (DESIGN.md §6). The fixtures mirror real-tree paths (src/sim, src/
// proto, bench, ...) so the path-scoping logic is exercised, not bypassed.
//
// The binary path and fixture root are injected by CMake as compile
// definitions; the fixtures are scanned, never compiled.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/json.h"
#include "obs/report.h"

namespace {

struct LintRun {
  int exit_code = -1;
  std::string output;

  std::size_t count(const std::string& needle) const {
    std::size_t n = 0;
    for (std::size_t at = output.find(needle); at != std::string::npos;
         at = output.find(needle, at + needle.size()))
      ++n;
    return n;
  }
};

/// Run scale_lint with the given arguments, capturing stdout + exit code.
LintRun run_lint(const std::string& args) {
  const std::string cmd =
      std::string(SCALE_LINT_BIN) + " " + args + " 2>/dev/null";
  LintRun r;
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "cannot spawn: " << cmd;
  if (pipe == nullptr) return r;
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) r.output += buf;
  const int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

const std::string kFixtures = std::string("--root ") + SCALE_LINT_FIXTURES;

TEST(ScaleLint, FixtureTreeYieldsExactPerRuleCounts) {
  const LintRun r = run_lint(kFixtures + " src bench");
  EXPECT_EQ(r.exit_code, 1) << r.output;
  EXPECT_EQ(r.count("[L1]"), 6u) << r.output;
  EXPECT_EQ(r.count("[L2]"), 6u) << r.output;
  EXPECT_EQ(r.count("[L3]"), 3u) << r.output;
  EXPECT_EQ(r.count("[L4]"), 3u) << r.output;
  EXPECT_EQ(r.count("[L5]"), 2u) << r.output;
  EXPECT_EQ(r.count("[L6]"), 5u) << r.output;
  EXPECT_EQ(r.count("[L7]"), 2u) << r.output;
  EXPECT_EQ(r.count("[L8]"), 4u) << r.output;
}

TEST(ScaleLint, PositiveFixturesFlagTheRightFiles) {
  const LintRun r = run_lint(kFixtures + " src bench");
  EXPECT_EQ(r.count("src/sim/l1_bad.cpp"), 6u) << r.output;
  EXPECT_EQ(r.count("src/sim/l2_bad.cpp"), 2u) << r.output;
  EXPECT_EQ(r.count("src/obs/l2_bad.cpp"), 2u) << r.output;
  EXPECT_EQ(r.count("src/core/l2_bad.cpp"), 2u) << r.output;
  EXPECT_EQ(r.count("src/proto/l3_bad.h"), 3u) << r.output;
  EXPECT_EQ(r.count("src/mme/l4_bad.cpp"), 3u) << r.output;
  EXPECT_EQ(r.count("src/epc/l5_bad.cpp"), 2u) << r.output;
  EXPECT_EQ(r.count("src/sim/l6_bad.cpp"), 5u) << r.output;
  EXPECT_EQ(r.count("src/epc/l7_bad.cpp"), 2u) << r.output;
  EXPECT_EQ(r.count("src/core/l8_bad.cpp"), 4u) << r.output;
}

TEST(ScaleLint, NegativeFixturesAreCleanAndExitZero) {
  const LintRun r =
      run_lint(kFixtures +
               " src/common/l1_ok.cpp src/sim/l2_ok.cpp src/core/l2_ok.cpp"
               " src/proto/l3_ok.h"
               " src/mme/l4_ok.cpp src/epc/l5_ok.cpp"
               " src/core/l6_ok.cpp src/core/l7_ok.cpp src/core/l8_ok.cpp"
               " bench");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_TRUE(r.output.empty()) << r.output;
}

TEST(ScaleLint, ShardWaiversAreAcceptedWithRationale) {
  // l6_ok.cpp holds one of each waiver placement: same-line shard-local,
  // comment-block shard-local, and shard-shared with a reason. None may
  // fire; the reason-less shard-shared() in l6_bad.cpp must.
  const LintRun ok = run_lint(kFixtures + " src/core/l6_ok.cpp");
  EXPECT_EQ(ok.exit_code, 0) << ok.output;
  const LintRun bad = run_lint(kFixtures + " src/sim/l6_bad.cpp");
  EXPECT_EQ(bad.exit_code, 1);
  EXPECT_EQ(bad.count("waiver needs a reason"), 1u) << bad.output;
}

TEST(ScaleLint, LayeringIsScopedToSrc) {
  // The same back-edge includes that fail under src/epc pass under bench/.
  const LintRun r = run_lint(kFixtures + " bench/l7_scope_ok.cpp");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(ScaleLint, OutOfScopeIterationIsNotFlagged) {
  // Identical code to l2_bad.cpp, but under bench/ — outside rule L2's
  // determinism-critical directory set.
  const LintRun r = run_lint(kFixtures + " bench/l2_scope_ok.cpp");
  EXPECT_EQ(r.exit_code, 0) << r.output;
}

TEST(ScaleLint, MissingExplicitPathIsAUsageError) {
  const LintRun r = run_lint(kFixtures + " no/such/dir");
  EXPECT_EQ(r.exit_code, 2);
}

TEST(ScaleLint, RealTreeIsClean) {
  // The acceptance bar for every PR: the production tree has zero findings.
  const LintRun r =
      run_lint(std::string("--root ") + SCALE_REPO_ROOT +
               " src bench tests examples tools");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  EXPECT_TRUE(r.output.empty()) << r.output;
}

// ---------------------------------------------------- scale-lint-v1 report

/// Run the bench_json_check binary (validator / baseline-compare modes).
LintRun run_json_check(const std::string& args) {
  const std::string cmd =
      std::string(SCALE_JSON_CHECK_BIN) + " " + args + " 2>/dev/null";
  LintRun r;
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr) << "cannot spawn: " << cmd;
  if (pipe == nullptr) return r;
  char buf[4096];
  while (std::fgets(buf, sizeof(buf), pipe) != nullptr) r.output += buf;
  const int status = pclose(pipe);
  r.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return r;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string tmp_json(const char* name) {
  return testing::TempDir() + "scale_lint_test_" + name + ".json";
}

TEST(ScaleLintJson, TwoRunsAreByteIdentical) {
  const std::string a = tmp_json("run_a");
  const std::string b = tmp_json("run_b");
  const LintRun r1 = run_lint(kFixtures + " --json " + a + " src bench");
  const LintRun r2 = run_lint(kFixtures + " --json " + b + " src bench");
  EXPECT_EQ(r1.exit_code, 1);
  EXPECT_EQ(r2.exit_code, 1);
  const std::string doc_a = slurp(a);
  const std::string doc_b = slurp(b);
  ASSERT_FALSE(doc_a.empty());
  EXPECT_EQ(doc_a, doc_b) << "scale-lint-v1 output must be deterministic";
  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(ScaleLintJson, ReportValidatesAndCountsMatchFixtures) {
  const std::string path = tmp_json("counts");
  run_lint(kFixtures + " --json " + path + " src bench");
  const auto doc = scale::obs::Json::parse(slurp(path));
  std::remove(path.c_str());
  ASSERT_TRUE(doc.has_value());
  const auto problems = scale::obs::validate_lint_json(*doc);
  for (const auto& p : problems) ADD_FAILURE() << p;
  EXPECT_EQ(doc->find("schema")->as_string(), "scale-lint-v1");
  const auto* by_rule = doc->find("counts")->find("by_rule");
  EXPECT_EQ(by_rule->find("L1")->as_int(), 6);
  EXPECT_EQ(by_rule->find("L2")->as_int(), 6);
  EXPECT_EQ(by_rule->find("L3")->as_int(), 3);
  EXPECT_EQ(by_rule->find("L4")->as_int(), 3);
  EXPECT_EQ(by_rule->find("L5")->as_int(), 2);
  EXPECT_EQ(by_rule->find("L6")->as_int(), 5);
  EXPECT_EQ(by_rule->find("L7")->as_int(), 2);
  EXPECT_EQ(by_rule->find("L8")->as_int(), 4);
  EXPECT_EQ(doc->find("counts")->find("findings")->as_int(), 31);
  // The fixture tree carries waivers too (l2_ok waivers, l6_ok contract).
  EXPECT_GT(doc->find("counts")->find("waivers")->as_int(), 0);
}

TEST(ScaleLintJson, RealTreeReportIsCleanAndInventoriesWaivers) {
  const std::string path = tmp_json("real");
  const LintRun r =
      run_lint(std::string("--root ") + SCALE_REPO_ROOT + " --json " + path +
               " src bench tests examples tools");
  EXPECT_EQ(r.exit_code, 0) << r.output;
  const auto doc = scale::obs::Json::parse(slurp(path));
  ASSERT_TRUE(doc.has_value());
  const auto problems = scale::obs::validate_lint_json(*doc);
  for (const auto& p : problems) ADD_FAILURE() << p;
  EXPECT_EQ(doc->find("findings")->size(), 0u);
  // The audited singletons (BufferPool::local, block_freelist,
  // action_block_freelist, Tracer::current_) plus the L2/L5 waivers must all
  // be inventoried — the report is how a reviewer sees the audit surface.
  // Since ShardedSim made Tracer::current_ thread_local the tree holds no
  // shard-shared singleton at all (every audited global is per-worker), so
  // the real tree asserts shard-local presence and only *validates* any
  // shard-shared waiver that ever reappears; the fixture tree keeps the
  // shard-shared kind itself exercised. (The SteeringPolicy rewrite moved
  // the MLB's load/backoff maps into the ordered MmpLoadView, retiring its
  // three order-independent waivers; the MillionUE slab store retired the
  // two UeContextStore ones — its FlatIndex tables are plain vectors.)
  EXPECT_GE(doc->find("waivers")->size(), 9u);
  bool saw_shard_local = false;
  for (const auto& w : doc->find("waivers")->elements()) {
    if (w.find("kind")->as_string() == "shard-local") saw_shard_local = true;
    if (w.find("kind")->as_string() == "shard-shared") {
      EXPECT_FALSE(w.find("reason")->as_string().empty())
          << w.find("file")->as_string();
    }
  }
  EXPECT_TRUE(saw_shard_local);
  // The validator binary agrees (the tier-1 lint leg runs this mode).
  const LintRun check = run_json_check("--lint " + path);
  EXPECT_EQ(check.exit_code, 0) << check.output;
  std::remove(path.c_str());
}

TEST(ScaleLintJson, CompareLintFailsOnNewFindingsAndWaivers) {
  const std::string clean = tmp_json("baseline_clean");
  const std::string dirty = tmp_json("current_dirty");
  const std::string waived = tmp_json("current_waived");
  run_lint(kFixtures + " --json " + clean + " src/core/l7_ok.cpp");
  run_lint(kFixtures + " --json " + dirty + " src/sim/l6_bad.cpp");
  run_lint(kFixtures + " --json " + waived + " src/core/l6_ok.cpp");

  // Identical reports: gate passes.
  EXPECT_EQ(run_json_check("--compare-lint " + clean + " " + clean).exit_code,
            0);
  // New findings: gate fails.
  EXPECT_EQ(run_json_check("--compare-lint " + clean + " " + dirty).exit_code,
            1);
  // Zero findings both sides, but NEW waivers: gate still fails — a waiver
  // silently widening the audited surface needs baseline review.
  EXPECT_EQ(run_json_check("--compare-lint " + clean + " " + waived).exit_code,
            1);
  // Findings/waivers *disappearing* is fine (the tree got cleaner).
  EXPECT_EQ(run_json_check("--compare-lint " + dirty + " " + clean).exit_code,
            0);
  std::remove(clean.c_str());
  std::remove(dirty.c_str());
  std::remove(waived.c_str());
}

}  // namespace

// eNodeB emulator behaviours in isolation, observed through a scripted
// MME-side probe endpoint: static assignment rules, weighted selection,
// exclusion on redirect, S1 connection bookkeeping.
#include <gtest/gtest.h>

#include <map>

#include "epc/enodeb.h"
#include "epc/ue.h"
#include "testbed/testbed.h"

namespace scale::epc {
namespace {

class MmeProbe : public Endpoint {
 public:
  explicit MmeProbe(Fabric& fabric) : fabric_(fabric) {
    node_ = fabric.add_endpoint(this);
  }
  ~MmeProbe() override { fabric_.remove_endpoint(node_); }

  void receive(NodeId, const proto::Pdu& pdu) override {
    if (const auto* s1ap = std::get_if<proto::S1apMessage>(&pdu)) {
      if (std::holds_alternative<proto::InitialUeMessage>(*s1ap))
        ++initial_count;
    }
  }

  NodeId node() const { return node_; }
  int initial_count = 0;

 private:
  Fabric& fabric_;
  NodeId node_ = 0;
};

struct World {
  sim::Engine engine;
  sim::Network network{Duration::us(100)};
  Fabric fabric{engine, network};
  EnodeB enb{fabric};
  MmeProbe mme_a{fabric};
  MmeProbe mme_b{fabric};
  MmeProbe mme_c{fabric};
};

std::unique_ptr<Ue> make_ue(World& w, proto::Imsi imsi) {
  Ue::Config cfg;
  cfg.imsi = imsi;
  cfg.secret_key = imsi * 7;
  cfg.guard_timeout = Duration::zero();  // disabled: probes never answer
  return std::make_unique<Ue>(w.engine, &w.enb, cfg);
}

TEST(EnodeB, WeightedSelectionFollowsWeights) {
  World w;
  w.enb.add_mme(w.mme_a.node(), 1, /*weight=*/1.0);
  w.enb.add_mme(w.mme_b.node(), 2, /*weight=*/3.0);

  std::vector<std::unique_ptr<Ue>> ues;
  for (int i = 0; i < 2000; ++i) {
    ues.push_back(make_ue(w, 1000 + i));
    ues.back()->attach();  // unregistered → weighted pick
  }
  w.engine.run();
  const double share_b =
      static_cast<double>(w.mme_b.initial_count) /
      (w.mme_a.initial_count + w.mme_b.initial_count);
  EXPECT_NEAR(share_b, 0.75, 0.04);
}

TEST(EnodeB, GutiCodePinsRegisteredDevices) {
  World w;
  w.enb.add_mme(w.mme_a.node(), 1, 1.0);
  w.enb.add_mme(w.mme_b.node(), 2, 1.0);

  // A TAU carries the GUTI; its MME code must fully determine the target.
  for (int i = 0; i < 50; ++i) {
    proto::NasTauRequest tau;
    tau.guti = proto::Guti{1, 1, /*code=*/2, static_cast<std::uint32_t>(i)};
    auto ue = make_ue(w, 5000 + i);
    // Force registered+idle state through the public radio API is heavy;
    // send via the initial-NAS entry point directly instead.
    w.enb.ue_initial_nas(*ue, proto::NasMessage{tau});
    w.engine.run();
  }
  EXPECT_EQ(w.mme_a.initial_count, 0);
  EXPECT_EQ(w.mme_b.initial_count, 50);
}

TEST(EnodeB, ExclusionOverridesGutiRoute) {
  World w;
  w.enb.add_mme(w.mme_a.node(), 1, 1.0);
  w.enb.add_mme(w.mme_b.node(), 2, 1.0);

  proto::NasAttachRequest attach;
  attach.imsi = 777;
  attach.old_guti = proto::Guti{1, 1, /*code=*/1, 42};  // points at A
  auto ue = make_ue(w, 777);
  w.enb.ue_initial_nas(*ue, proto::NasMessage{attach},
                       /*exclude=*/w.mme_a.node());
  w.engine.run();
  EXPECT_EQ(w.mme_a.initial_count, 0);
  EXPECT_EQ(w.mme_b.initial_count, 1);
}

TEST(EnodeB, UnknownCodeFallsBackToWeightedPick) {
  World w;
  w.enb.add_mme(w.mme_a.node(), 1, 1.0);

  proto::NasServiceRequest sr;
  sr.mme_code = 99;  // no pool member has this code
  sr.m_tmsi = 5;
  auto ue = make_ue(w, 888);
  w.enb.ue_initial_nas(*ue, proto::NasMessage{sr});
  w.engine.run();
  EXPECT_EQ(w.mme_a.initial_count, 1);
}

TEST(EnodeB, SameCodeSplitsAcrossFrontEnds) {
  // Two "MMEs" with the same code (multiple MLB VMs of one pool): GUTI
  // routing must spread between them, not always pick the first.
  World w;
  w.enb.add_mme(w.mme_a.node(), 1, 1.0);
  w.enb.add_mme(w.mme_b.node(), 1, 1.0);

  for (int i = 0; i < 600; ++i) {
    proto::NasTauRequest tau;
    tau.guti = proto::Guti{1, 1, 1, static_cast<std::uint32_t>(i)};
    auto ue = make_ue(w, 9000 + i);
    w.enb.ue_initial_nas(*ue, proto::NasMessage{tau});
    w.engine.run();
  }
  EXPECT_GT(w.mme_a.initial_count, 200);
  EXPECT_GT(w.mme_b.initial_count, 200);
}

TEST(EnodeB, ConnectionsEraseOnRelease) {
  World w;
  w.enb.add_mme(w.mme_a.node(), 1, 1.0);
  auto ue = make_ue(w, 4242);
  ue->attach();
  w.engine.run();
  ASSERT_EQ(w.enb.connection_count(), 1u);

  proto::UeContextReleaseCommand rel;
  rel.enb_id = w.enb.node();
  rel.enb_ue_id = ue->s1_conn();
  rel.cause = proto::ReleaseCause::kUserInactivity;
  w.fabric.send(w.mme_a.node(), w.enb.node(), proto::make_pdu(rel));
  w.engine.run();
  EXPECT_EQ(w.enb.connection_count(), 0u);
}

TEST(EnodeB, ReattachReplacesStaleConnection) {
  World w;
  w.enb.add_mme(w.mme_a.node(), 1, 1.0);
  auto ue = make_ue(w, 31337);
  ue->attach();
  w.engine.run();
  EXPECT_EQ(w.enb.connection_count(), 1u);
  // The probe never answers; a retry via the radio API must replace, not
  // leak, the S1 connection.
  proto::NasAttachRequest retry;
  retry.imsi = ue->imsi();
  w.enb.ue_initial_nas(*ue, proto::NasMessage{retry});
  w.engine.run();
  EXPECT_EQ(w.enb.connection_count(), 1u) << "stale S1 connection leaked";
}

TEST(EnodeB, RrcSupervisionReleasesStaleConnections) {
  // With supervision enabled, a connection whose MME never answers (dead
  // core node) is released locally and the UE returns to Idle.
  sim::Engine engine;
  sim::Network network{Duration::us(100)};
  Fabric fabric{engine, network};
  EnodeB::Config cfg;
  cfg.rrc_inactivity = Duration::sec(2.0);
  EnodeB enb(fabric, cfg);
  MmeProbe dead(fabric);
  enb.add_mme(dead.node(), 1, 1.0);

  Ue::Config ue_cfg;
  ue_cfg.imsi = 99;
  ue_cfg.secret_key = 1;
  ue_cfg.guard_timeout = Duration::zero();
  Ue ue(engine, &enb, ue_cfg);
  ue.attach();
  engine.run_until(Time::from_sec(0.5));
  ASSERT_EQ(enb.connection_count(), 1u);

  engine.run_until(Time::from_sec(5.0));
  EXPECT_EQ(enb.connection_count(), 0u);
  EXPECT_GE(enb.rrc_releases(), 1u);
  EXPECT_FALSE(ue.connected());
  // The sweep stops once no connections remain (the engine can drain).
  engine.run();
  EXPECT_TRUE(engine.idle());
}

TEST(EnodeB, RrcSupervisionSparesActiveConnections) {
  sim::Engine engine;
  sim::Network network{Duration::us(100)};
  Fabric fabric{engine, network};
  EnodeB::Config cfg;
  cfg.rrc_inactivity = Duration::sec(2.0);
  EnodeB enb(fabric, cfg);
  MmeProbe mme(fabric);
  enb.add_mme(mme.node(), 1, 1.0);

  Ue::Config ue_cfg;
  ue_cfg.imsi = 98;
  ue_cfg.secret_key = 1;
  ue_cfg.guard_timeout = Duration::zero();
  Ue ue(engine, &enb, ue_cfg);
  ue.attach();
  engine.run_until(Time::from_sec(0.5));
  ASSERT_EQ(enb.connection_count(), 1u);

  // Keep the connection chatty: uplink NAS every second.
  for (int i = 1; i <= 6; ++i) {
    engine.at(Time::from_sec(static_cast<double>(i)), [&]() {
      enb.ue_uplink_nas(ue, proto::NasMessage{proto::NasAttachComplete{}});
    });
  }
  engine.run_until(Time::from_sec(6.5));
  EXPECT_EQ(enb.connection_count(), 1u)
      << "activity must keep the RRC connection alive";
  EXPECT_EQ(enb.rrc_releases(), 0u);
}

}  // namespace
}  // namespace scale::epc

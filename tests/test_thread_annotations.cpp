// Thread-annotation contract smoke test (DESIGN.md §6 rule L8).
//
// The SCALE_* macros are no-ops under gcc, so this TU proves the header
// compiles and behaves on the default toolchain: annotated members parse,
// Mutex locks and unlocks for real (it wraps std::mutex), and MutexLock
// releases on scope exit — including the early-return path. Under clang the
// same code additionally passes -Wthread-safety -Werror=thread-safety,
// which is the analysis half of the contract.
#include "common/thread_annotations.h"

#include <gtest/gtest.h>

namespace {

using scale::common::Mutex;
using scale::common::MutexLock;

/// The canonical annotated shape: a capability member, guarded state, and
/// accessors declaring their locking contract.
class GuardedCounter {
 public:
  void bump() SCALE_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++count_;
  }

  int get() SCALE_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return count_;
  }

  void bump_locked() SCALE_REQUIRES(mu_) { ++count_; }

  Mutex& mu() SCALE_RETURN_CAPABILITY(mu_) { return mu_; }

 private:
  Mutex mu_;
  int count_ SCALE_GUARDED_BY(mu_) = 0;
};

TEST(ThreadAnnotations, GuardedCounterCompilesAndCounts) {
  GuardedCounter c;
  c.bump();
  c.bump();
  EXPECT_EQ(c.get(), 2);
}

TEST(ThreadAnnotations, RequiresPathWorksUnderExplicitLock) {
  GuardedCounter c;
  c.mu().lock();
  c.bump_locked();
  c.mu().unlock();
  EXPECT_EQ(c.get(), 1);
}

TEST(ThreadAnnotations, MutexIsARealLock) {
  // (try_lock on a mutex this thread already holds is UB, so the assertion
  // is on the released state only.)
  Mutex mu;
  mu.lock();
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(ThreadAnnotations, MutexLockReleasesOnEarlyReturn) {
  Mutex mu;
  const auto guarded = [&](bool early) {
    MutexLock lock(mu);
    if (early) return 1;
    return 2;
  };
  EXPECT_EQ(guarded(true), 1);
  EXPECT_EQ(guarded(false), 2);
  // Both scopes released: the lock is free again.
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

}  // namespace

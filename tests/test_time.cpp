#include <gtest/gtest.h>

#include "common/time.h"

namespace scale {
namespace {

using namespace scale::literals;

TEST(Duration, ConstructorsAndAccessors) {
  EXPECT_EQ(Duration::us(1500).count_us(), 1500);
  EXPECT_EQ(Duration::ms(1.5).count_us(), 1500);
  EXPECT_EQ(Duration::sec(2.0).count_us(), 2'000'000);
  EXPECT_DOUBLE_EQ(Duration::us(2500).to_ms(), 2.5);
  EXPECT_DOUBLE_EQ(Duration::us(2'500'000).to_sec(), 2.5);
}

TEST(Duration, Arithmetic) {
  const Duration a = Duration::ms(3.0), b = Duration::ms(1.0);
  EXPECT_EQ((a + b).count_us(), 4000);
  EXPECT_EQ((a - b).count_us(), 2000);
  EXPECT_EQ((a * 3).count_us(), 9000);
  EXPECT_EQ((a * 0.5).count_us(), 1500);
  EXPECT_EQ((a / 3).count_us(), 1000);
  EXPECT_DOUBLE_EQ(a / b, 3.0);
}

TEST(Duration, ComparisonIsTotalOrder) {
  EXPECT_LT(Duration::us(1), Duration::us(2));
  EXPECT_EQ(Duration::ms(1.0), Duration::us(1000));
  EXPECT_GT(Duration::sec(1.0), Duration::ms(999.0));
}

TEST(Duration, NegativeIntermediatesAllowed) {
  const Duration d = Duration::ms(1.0) - Duration::ms(5.0);
  EXPECT_EQ(d.count_us(), -4000);
  EXPECT_LT(d, Duration::zero());
}

TEST(Duration, Literals) {
  EXPECT_EQ((5_us).count_us(), 5);
  EXPECT_EQ((5_ms).count_us(), 5000);
  EXPECT_EQ((5_sec).count_us(), 5'000'000);
}

TEST(Time, Arithmetic) {
  const Time t = Time::zero() + Duration::sec(1.5);
  EXPECT_EQ(t.count_us(), 1'500'000);
  EXPECT_EQ((t - Time::zero()).count_us(), 1'500'000);
  EXPECT_EQ((t - Duration::ms(500.0)).count_us(), 1'000'000);
}

TEST(Time, CompoundAssignment) {
  Time t = Time::zero();
  t += Duration::ms(250.0);
  t += Duration::ms(250.0);
  EXPECT_EQ(t, Time::from_us(500'000));
}

TEST(Time, FromSeconds) {
  EXPECT_EQ(Time::from_sec(0.001).count_us(), 1000);
}

TEST(Duration, StringRendering) {
  EXPECT_EQ(Duration::us(12).str(), "12us");
  EXPECT_NE(Duration::ms(3.0).str().find("ms"), std::string::npos);
  EXPECT_NE(Duration::sec(3.0).str().find("s"), std::string::npos);
}

}  // namespace
}  // namespace scale

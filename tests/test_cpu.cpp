#include <gtest/gtest.h>

#include "common/check.h"

#include "sim/cpu.h"
#include "sim/engine.h"

namespace scale::sim {
namespace {

TEST(CpuModel, SingleJobCompletesAfterServiceTime) {
  Engine eng;
  CpuModel cpu(eng);
  Time done = Time::zero();
  cpu.execute(Duration::us(100), [&] { done = eng.now(); });
  eng.run();
  EXPECT_EQ(done, Time::from_us(100));
  EXPECT_EQ(cpu.completed_jobs(), 1u);
}

TEST(CpuModel, FifoQueueingAccumulatesDelay) {
  Engine eng;
  CpuModel cpu(eng);
  std::vector<Time> done;
  for (int i = 0; i < 3; ++i)
    cpu.execute(Duration::us(100), [&] { done.push_back(eng.now()); });
  eng.run();
  ASSERT_EQ(done.size(), 3u);
  EXPECT_EQ(done[0], Time::from_us(100));
  EXPECT_EQ(done[1], Time::from_us(200));
  EXPECT_EQ(done[2], Time::from_us(300));
}

TEST(CpuModel, SpeedFactorScalesServiceTime) {
  Engine eng;
  CpuModel fast(eng, 2.0);
  Time done = Time::zero();
  fast.execute(Duration::us(100), [&] { done = eng.now(); });
  eng.run();
  EXPECT_EQ(done, Time::from_us(50));
}

TEST(CpuModel, BacklogReflectsQueuedWork) {
  Engine eng;
  CpuModel cpu(eng);
  cpu.execute(Duration::us(300), nullptr);
  cpu.execute(Duration::us(200), nullptr);
  EXPECT_EQ(cpu.backlog(), Duration::us(500));
  EXPECT_TRUE(cpu.busy());
  eng.run_until(Time::from_us(400));
  EXPECT_EQ(cpu.backlog(), Duration::us(100));
  eng.run();
  EXPECT_EQ(cpu.backlog(), Duration::zero());
  EXPECT_FALSE(cpu.busy());
}

TEST(CpuModel, CumulativeBusyIsWorkConserving) {
  Engine eng;
  CpuModel cpu(eng);
  cpu.execute(Duration::us(100), nullptr);
  eng.run_until(Time::from_us(50));
  EXPECT_EQ(cpu.cumulative_busy(), Duration::us(50));
  // Idle gap, then more work.
  eng.run_until(Time::from_us(500));
  EXPECT_EQ(cpu.cumulative_busy(), Duration::us(100));
  cpu.execute(Duration::us(100), nullptr);
  eng.run();
  EXPECT_EQ(cpu.cumulative_busy(), Duration::us(200));
}

TEST(CpuModel, WorkArrivingWhileBusyQueuesBehind) {
  Engine eng;
  CpuModel cpu(eng);
  Time done2 = Time::zero();
  cpu.execute(Duration::us(100), nullptr);
  eng.at(Time::from_us(50), [&] {
    cpu.execute(Duration::us(100), [&] { done2 = eng.now(); });
  });
  eng.run();
  EXPECT_EQ(done2, Time::from_us(200));  // waits for the first job
}

TEST(CpuModel, OverloadGrowsDelayUnboundedly) {
  // Offered load 2×: the k-th completion is delayed ~k·service/2 — the
  // queueing blow-up of Fig. 2(a).
  Engine eng;
  CpuModel cpu(eng);
  std::vector<Duration> delays;
  for (int i = 0; i < 100; ++i) {
    const Time arrival = Time::from_us(i * 50);
    eng.at(arrival, [&, arrival] {
      cpu.execute(Duration::us(100),
                  [&, arrival] { delays.push_back(eng.now() - arrival); });
    });
  }
  eng.run();
  ASSERT_EQ(delays.size(), 100u);
  EXPECT_GT(delays.back(), delays.front() * 20);
}

TEST(CpuModel, ZeroWorkCompletesImmediately) {
  Engine eng;
  CpuModel cpu(eng);
  bool fired = false;
  cpu.execute(Duration::zero(), [&] { fired = true; });
  eng.run();
  EXPECT_TRUE(fired);
  EXPECT_EQ(eng.now(), Time::zero());
}

TEST(CpuModel, NegativeWorkRejected) {
  Engine eng;
  CpuModel cpu(eng);
  EXPECT_THROW(cpu.execute(Duration::us(-5), nullptr), scale::CheckError);
}

}  // namespace
}  // namespace scale::sim

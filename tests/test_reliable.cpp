// ReliableChannel — the SCTP-like shim: pass-through when disabled,
// retransmission through loss, receive-side dedup, backoff and abandonment.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "epc/fabric.h"
#include "epc/reliable.h"
#include "proto/s11.h"
#include "sim/engine.h"
#include "sim/network.h"

namespace scale {
namespace {

struct RelNode final : epc::Endpoint {
  epc::Fabric& fabric;
  sim::NodeId node;
  epc::ReliableChannel rel;
  std::vector<proto::Imsi> got;

  bool alive = true;

  explicit RelNode(epc::Fabric& f)
      : fabric(f), node(f.add_endpoint(this)), rel(f, node) {}
  ~RelNode() override {
    if (alive) fabric.remove_endpoint(node);
  }
  /// Crash semantics (cf. ScaleCluster::retired_): the endpoint leaves the
  /// fabric but the object survives — armed retransmit timers capture the
  /// channel and must find it alive when they fire.
  void crash() {
    fabric.remove_endpoint(node);
    alive = false;
  }

  void receive(sim::NodeId from, const proto::Pdu& pdu) override {
    const proto::Pdu* app = rel.unwrap(from, pdu);
    if (app == nullptr) return;  // shim traffic
    const auto* s11 = std::get_if<proto::S11Message>(app);
    ASSERT_NE(s11, nullptr);
    const auto* req = std::get_if<proto::CreateSessionRequest>(s11);
    ASSERT_NE(req, nullptr);
    got.push_back(req->imsi);
  }
};

proto::Pdu ping(proto::Imsi imsi) {
  proto::CreateSessionRequest req;
  req.imsi = imsi;
  return proto::make_pdu(req);
}

struct ReliableTest : ::testing::Test {
  sim::Engine engine;
  sim::Network net{Duration::us(500), 42};
  epc::Fabric fabric{engine, net};

  void enable_transport() {
    epc::TransportConfig t;
    t.reliable = true;
    fabric.set_transport(t);
  }
};

TEST_F(ReliableTest, DisabledShimIsPassThrough) {
  RelNode a(fabric), b(fabric);
  ASSERT_FALSE(a.rel.enabled());
  a.rel.send(b.node, ping(7));
  engine.run_until(Time::from_sec(1.0));
  ASSERT_EQ(b.got.size(), 1u);
  EXPECT_EQ(b.got[0], 7u);
  // No wrapping, no ack: exactly one message crossed the wire.
  EXPECT_EQ(net.messages_sent(), 1u);
  EXPECT_EQ(a.rel.retransmits(), 0u);
}

TEST_F(ReliableTest, CleanPathDeliversOnceAndAcks) {
  enable_transport();
  RelNode a(fabric), b(fabric);
  a.rel.send(b.node, ping(1));
  engine.run_until(Time::from_sec(1.0));
  ASSERT_EQ(b.got.size(), 1u);
  // Segment + ack; no retransmission on a clean link.
  EXPECT_EQ(net.messages_sent(), 2u);
  EXPECT_EQ(a.rel.retransmits(), 0u);
  EXPECT_EQ(a.rel.abandoned(), 0u);
  EXPECT_TRUE(engine.idle()) << "acked send must leave no armed timer work";
}

TEST_F(ReliableTest, DeliversEverythingThroughHeavyLoss) {
  enable_transport();
  RelNode a(fabric), b(fabric);
  sim::LinkFaults f;
  f.drop_prob = 0.3;  // both directions: data and acks get lost
  net.set_global_faults(f);
  const int kCount = 50;
  for (int i = 0; i < kCount; ++i) {
    engine.after(Duration::ms(static_cast<double>(i)),
                 [&a, &b, i]() { a.rel.send(b.node, ping(100 + i)); });
  }
  engine.run_until(Time::from_sec(120.0));
  ASSERT_EQ(b.got.size(), static_cast<std::size_t>(kCount))
      << "every send must eventually be delivered exactly once";
  std::vector<proto::Imsi> sorted = b.got;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < kCount; ++i)
    EXPECT_EQ(sorted[static_cast<std::size_t>(i)], 100u + i);
  EXPECT_GT(a.rel.retransmits(), 0u);
  EXPECT_EQ(a.rel.abandoned(), 0u);
}

TEST_F(ReliableTest, FaultDuplicatesAreSuppressed) {
  enable_transport();
  RelNode a(fabric), b(fabric);
  sim::LinkFaults f;
  f.dup_prob = 1.0;  // every PDU (segment AND ack) arrives twice
  net.set_global_faults(f);
  for (int i = 0; i < 10; ++i) a.rel.send(b.node, ping(200 + i));
  engine.run_until(Time::from_sec(30.0));
  ASSERT_EQ(b.got.size(), 10u);
  EXPECT_GT(b.rel.duplicates_suppressed(), 0u);
}

TEST_F(ReliableTest, RetransmitsAcrossLinkDownWindow) {
  enable_transport();
  RelNode a(fabric), b(fabric);
  net.schedule_link_down(a.node, b.node, Time::zero(), Time::from_sec(1.0));
  a.rel.send(b.node, ping(5));
  engine.run_until(Time::from_sec(30.0));
  ASSERT_EQ(b.got.size(), 1u);
  EXPECT_GE(a.rel.retransmits(), 1u);
  EXPECT_EQ(a.rel.abandoned(), 0u);
}

TEST_F(ReliableTest, AbandonsAfterMaxRetransmits) {
  enable_transport();
  RelNode a(fabric), b(fabric);
  // Dead for far longer than the whole backoff budget
  // (250ms * 2^k capped at 4s, 8 retransmits ≈ 20s of trying).
  net.schedule_link_down(a.node, b.node, Time::zero(),
                         Time::from_sec(1000.0));
  a.rel.send(b.node, ping(6));
  engine.run_until(Time::from_sec(100.0));
  EXPECT_TRUE(b.got.empty());
  EXPECT_EQ(a.rel.abandoned(), 1u);
  EXPECT_EQ(a.rel.retransmits(), fabric.transport().max_retransmits);
}

TEST_F(ReliableTest, BackoffScheduleIsJitterlessAndCapped) {
  enable_transport();
  RelNode a(fabric), b(fabric);
  net.schedule_link_down(a.node, b.node, Time::zero(),
                         Time::from_sec(1000.0));
  a.rel.send(b.node, ping(9));

  // Defaults: 250 ms initial, ×2 backoff, capped at 4 s — the k-th
  // retransmit fires exactly at the prefix sum 250, 750, 1750, 3750, 7750,
  // 11750, 15750, 19750 ms. No jitter: the schedule is a pure function of
  // the config, so stepping just past each boundary observes exactly one
  // more retransmission.
  const double kFireMs[] = {250, 750, 1750, 3750, 7750, 11750, 15750, 19750};
  for (std::size_t k = 0; k < 8; ++k) {
    engine.run_until(Time::from_sec(kFireMs[k] / 1000.0 - 0.001));
    EXPECT_EQ(a.rel.retransmits(), k) << "early at boundary " << k;
    engine.run_until(Time::from_sec(kFireMs[k] / 1000.0 + 0.001));
    EXPECT_EQ(a.rel.retransmits(), k + 1) << "late at boundary " << k;
  }
  // The capped RTO (4 s) runs out once more, then the send is abandoned.
  engine.run_until(Time::from_sec(100.0));
  EXPECT_EQ(a.rel.abandoned(), 1u);
  EXPECT_EQ(a.rel.retransmits(), fabric.transport().max_retransmits);
}

TEST_F(ReliableTest, RetryHorizonMatchesBackoffSchedule) {
  // Defaults: 250 + 500 + 1000 + 2000 + 4 × 4000 (capped) = 19750 ms — the
  // instant of the last retransmission above.
  EXPECT_EQ(epc::TransportConfig{}.retry_horizon(), Duration::ms(19750.0));

  epc::TransportConfig t;
  t.rto_initial = Duration::ms(100.0);
  t.rto_backoff = 3.0;
  t.rto_max = Duration::ms(500.0);
  t.max_retransmits = 4;
  // 100 + 300 + 500 + 500 (capped): the cap binds from the third RTO on.
  EXPECT_EQ(t.retry_horizon(), Duration::ms(1400.0));
}

TEST_F(ReliableTest, CrashedSenderStopsRetransmitting) {
  enable_transport();
  RelNode a(fabric), b(fabric);
  net.schedule_link_down(a.node, b.node, Time::zero(), Time::from_sec(50.0));
  a.rel.send(b.node, ping(8));
  engine.run_until(Time::from_sec(1.0));  // a few retransmits already burned
  const std::uint64_t before = a.rel.retransmits();
  a.crash();  // VM crash: the endpoint leaves the fabric
  engine.run_until(Time::from_sec(100.0));
  // The next timer fires, sees the sender deregistered, and gives up:
  // no delivery, no further retransmissions, no abandonment counted.
  EXPECT_TRUE(b.got.empty());
  EXPECT_EQ(a.rel.retransmits(), before);
  EXPECT_EQ(a.rel.abandoned(), 0u);
}

TEST_F(ReliableTest, UnreliableSendBypassesShim) {
  enable_transport();
  RelNode a(fabric), b(fabric);
  a.rel.send_unreliable(b.node, ping(4));
  engine.run_until(Time::from_sec(1.0));
  ASSERT_EQ(b.got.size(), 1u);
  // Unwrapped on the wire: one message, no ack, nothing pending.
  EXPECT_EQ(net.messages_sent(), 1u);
  EXPECT_TRUE(engine.idle());
}

}  // namespace
}  // namespace scale

#include <gtest/gtest.h>

#include "common/check.h"

#include "sim/cpu.h"
#include "sim/engine.h"
#include "sim/metrics.h"

namespace scale::sim {
namespace {

TEST(DelayRecorder, BucketsByName) {
  DelayRecorder rec;
  rec.record("attach", Duration::ms(10.0));
  rec.record("attach", Duration::ms(20.0));
  rec.record("handover", Duration::ms(5.0));
  EXPECT_TRUE(rec.has("attach"));
  EXPECT_FALSE(rec.has("tau"));
  EXPECT_EQ(rec.bucket("attach").count(), 2u);
  EXPECT_EQ(rec.total_count(), 3u);
  EXPECT_EQ(rec.buckets().size(), 2u);
  EXPECT_DOUBLE_EQ(rec.bucket("handover").percentile(0.99), 5.0);
}

TEST(DelayRecorder, MergedCombinesAllBuckets) {
  DelayRecorder rec;
  rec.record("a", Duration::ms(1.0));
  rec.record("b", Duration::ms(3.0));
  const auto merged = rec.merged();
  EXPECT_EQ(merged.count(), 2u);
  EXPECT_DOUBLE_EQ(merged.percentile(1.0), 3.0);
}

TEST(DelayRecorder, UnknownBucketThrows) {
  DelayRecorder rec;
  EXPECT_THROW(rec.bucket("nope"), scale::CheckError);
}

TEST(CpuSampler, ProducesUtilizationTimeline) {
  Engine eng;
  CpuModel cpu(eng);
  CpuSampler sampler(eng, Duration::ms(10.0));
  sampler.track("vm1", cpu);

  // Busy for the first 50 ms, idle afterwards.
  cpu.execute(Duration::ms(50.0), nullptr);
  eng.run_until(Time::from_sec(0.1));
  sampler.stop();

  const TimeSeries& ts = sampler.series("vm1");
  ASSERT_GE(ts.size(), 9u);
  // First 5 samples fully busy, late samples idle.
  EXPECT_NEAR(ts.points()[0].second, 1.0, 1e-9);
  EXPECT_NEAR(ts.points()[4].second, 1.0, 1e-9);
  EXPECT_NEAR(ts.points().back().second, 0.0, 1e-9);
  EXPECT_NEAR(ts.mean_in(Time::zero(), Time::from_sec(0.05)), 1.0, 0.05);
}

TEST(CpuSampler, TracksMultipleCpusIndependently) {
  Engine eng;
  CpuModel busy(eng), idle(eng);
  CpuSampler sampler(eng, Duration::ms(10.0));
  sampler.track("busy", busy);
  sampler.track("idle", idle);
  busy.execute(Duration::ms(100.0), nullptr);
  eng.run_until(Time::from_sec(0.1));
  sampler.stop();
  EXPECT_NEAR(sampler.series("busy").mean_value(), 1.0, 0.05);
  EXPECT_NEAR(sampler.series("idle").mean_value(), 0.0, 1e-9);
  EXPECT_EQ(sampler.names().size(), 2u);
}

TEST(CpuSampler, UntrackStopsSeries) {
  Engine eng;
  CpuModel cpu(eng);
  CpuSampler sampler(eng, Duration::ms(10.0));
  sampler.track("vm", cpu);
  eng.run_until(Time::from_sec(0.05));
  sampler.untrack("vm");
  EXPECT_FALSE(sampler.has("vm"));
  sampler.stop();
}

TEST(UtilizationTracker, ConvergesToActualLoad) {
  Engine eng;
  CpuModel cpu(eng);
  UtilizationTracker tracker(eng, cpu, Duration::ms(100.0), 0.3);
  // 50% duty cycle: 50 ms of work every 100 ms.
  for (int i = 0; i < 30; ++i) {
    eng.at(Time::from_us(i * 100000), [&cpu] {
      cpu.execute(Duration::ms(50.0), nullptr);
    });
  }
  eng.run_until(Time::from_sec(3.0));
  tracker.stop();
  EXPECT_NEAR(tracker.utilization(), 0.5, 0.1);
}

TEST(UtilizationTracker, IdleCpuReadsZero) {
  Engine eng;
  CpuModel cpu(eng);
  UtilizationTracker tracker(eng, cpu);
  eng.run_until(Time::from_sec(1.0));
  tracker.stop();
  EXPECT_NEAR(tracker.utilization(), 0.0, 1e-9);
}

}  // namespace
}  // namespace scale::sim

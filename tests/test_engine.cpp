#include <gtest/gtest.h>

#include "common/check.h"

#include <vector>

#include "sim/engine.h"

namespace scale::sim {
namespace {

TEST(Engine, RunsEventsInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.at(Time::from_us(300), [&] { order.push_back(3); });
  eng.at(Time::from_us(100), [&] { order.push_back(1); });
  eng.at(Time::from_us(200), [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), Time::from_us(300));
}

TEST(Engine, EqualTimesFireInSchedulingOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    eng.at(Time::from_us(50), [&order, i] { order.push_back(i); });
  eng.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, AfterIsRelative) {
  Engine eng;
  Time fired = Time::zero();
  eng.at(Time::from_us(100), [&] {
    eng.after(Duration::us(50), [&] { fired = eng.now(); });
  });
  eng.run();
  EXPECT_EQ(fired, Time::from_us(150));
}

TEST(Engine, SchedulingIntoThePastRejected) {
  Engine eng;
  eng.at(Time::from_us(100), [] {});
  eng.run();
  EXPECT_THROW(eng.at(Time::from_us(50), [] {}), scale::CheckError);
}

TEST(Engine, NegativeDelayRejected) {
  Engine eng;
  EXPECT_THROW(eng.after(Duration::us(-1), [] {}), scale::CheckError);
}

TEST(Engine, CancelPreventsExecution) {
  Engine eng;
  bool fired = false;
  const EventId id = eng.at(Time::from_us(10), [&] { fired = true; });
  EXPECT_TRUE(eng.cancel(id));
  eng.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelTwiceReturnsFalse) {
  Engine eng;
  const EventId id = eng.at(Time::from_us(10), [] {});
  EXPECT_TRUE(eng.cancel(id));
  EXPECT_FALSE(eng.cancel(id));
}

TEST(Engine, CancelUnknownIdReturnsFalse) {
  Engine eng;
  EXPECT_FALSE(eng.cancel(999));
}

TEST(Engine, RunUntilAdvancesClockExactly) {
  Engine eng;
  int fired = 0;
  eng.at(Time::from_us(100), [&] { ++fired; });
  eng.at(Time::from_us(900), [&] { ++fired; });
  eng.run_until(Time::from_us(500));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(eng.now(), Time::from_us(500));
  eng.run_until(Time::from_us(1000));
  EXPECT_EQ(fired, 2);
}

TEST(Engine, RunLimitStopsEarly) {
  Engine eng;
  int fired = 0;
  for (int i = 1; i <= 10; ++i)
    eng.at(Time::from_us(i * 10), [&] { ++fired; });
  eng.run(3);
  EXPECT_EQ(fired, 3);
}

TEST(Engine, EventsCanScheduleMoreEvents) {
  Engine eng;
  int depth = 0;
  std::function<void()> chain = [&]() {
    if (++depth < 100) eng.after(Duration::us(1), chain);
  };
  eng.after(Duration::us(1), chain);
  eng.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(eng.now(), Time::from_us(100));
  EXPECT_EQ(eng.events_processed(), 100u);
}

TEST(Engine, IdleAfterDrain) {
  Engine eng;
  eng.at(Time::from_us(5), [] {});
  EXPECT_FALSE(eng.idle());
  eng.run();
  EXPECT_TRUE(eng.idle());
}

TEST(Engine, CancelledEventDoesNotAdvanceClockInRunUntil) {
  Engine eng;
  const EventId id = eng.at(Time::from_us(100), [] {});
  eng.cancel(id);
  eng.run_until(Time::from_us(200));
  EXPECT_EQ(eng.now(), Time::from_us(200));
  EXPECT_EQ(eng.events_processed(), 0u);
}

}  // namespace
}  // namespace scale::sim

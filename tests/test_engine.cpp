#include <gtest/gtest.h>

#include "common/check.h"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/engine.h"

namespace scale::sim {
namespace {

TEST(Engine, RunsEventsInTimeOrder) {
  Engine eng;
  std::vector<int> order;
  eng.at(Time::from_us(300), [&] { order.push_back(3); });
  eng.at(Time::from_us(100), [&] { order.push_back(1); });
  eng.at(Time::from_us(200), [&] { order.push_back(2); });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(eng.now(), Time::from_us(300));
}

TEST(Engine, EqualTimesFireInSchedulingOrder) {
  Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i)
    eng.at(Time::from_us(50), [&order, i] { order.push_back(i); });
  eng.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, AfterIsRelative) {
  Engine eng;
  Time fired = Time::zero();
  eng.at(Time::from_us(100), [&] {
    eng.after(Duration::us(50), [&] { fired = eng.now(); });
  });
  eng.run();
  EXPECT_EQ(fired, Time::from_us(150));
}

TEST(Engine, SchedulingIntoThePastRejected) {
  Engine eng;
  eng.at(Time::from_us(100), [] {});
  eng.run();
  EXPECT_THROW(eng.at(Time::from_us(50), [] {}), scale::CheckError);
}

TEST(Engine, NegativeDelayRejected) {
  Engine eng;
  EXPECT_THROW(eng.after(Duration::us(-1), [] {}), scale::CheckError);
}

TEST(Engine, CancelPreventsExecution) {
  Engine eng;
  bool fired = false;
  const EventId id = eng.at(Time::from_us(10), [&] { fired = true; });
  EXPECT_TRUE(eng.cancel(id));
  eng.run();
  EXPECT_FALSE(fired);
}

TEST(Engine, CancelTwiceReturnsFalse) {
  Engine eng;
  const EventId id = eng.at(Time::from_us(10), [] {});
  EXPECT_TRUE(eng.cancel(id));
  EXPECT_FALSE(eng.cancel(id));
}

TEST(Engine, CancelUnknownIdReturnsFalse) {
  Engine eng;
  EXPECT_FALSE(eng.cancel(999));
}

TEST(Engine, RunUntilAdvancesClockExactly) {
  Engine eng;
  int fired = 0;
  eng.at(Time::from_us(100), [&] { ++fired; });
  eng.at(Time::from_us(900), [&] { ++fired; });
  eng.run_until(Time::from_us(500));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(eng.now(), Time::from_us(500));
  eng.run_until(Time::from_us(1000));
  EXPECT_EQ(fired, 2);
}

TEST(Engine, RunLimitStopsEarly) {
  Engine eng;
  int fired = 0;
  for (int i = 1; i <= 10; ++i)
    eng.at(Time::from_us(i * 10), [&] { ++fired; });
  eng.run(3);
  EXPECT_EQ(fired, 3);
}

TEST(Engine, EventsCanScheduleMoreEvents) {
  Engine eng;
  int depth = 0;
  std::function<void()> chain = [&]() {
    if (++depth < 100) eng.after(Duration::us(1), chain);
  };
  eng.after(Duration::us(1), chain);
  eng.run();
  EXPECT_EQ(depth, 100);
  EXPECT_EQ(eng.now(), Time::from_us(100));
  EXPECT_EQ(eng.events_processed(), 100u);
}

TEST(Engine, IdleAfterDrain) {
  Engine eng;
  eng.at(Time::from_us(5), [] {});
  EXPECT_FALSE(eng.idle());
  eng.run();
  EXPECT_TRUE(eng.idle());
}

TEST(Engine, CancelledEventDoesNotAdvanceClockInRunUntil) {
  Engine eng;
  const EventId id = eng.at(Time::from_us(100), [] {});
  eng.cancel(id);
  eng.run_until(Time::from_us(200));
  EXPECT_EQ(eng.now(), Time::from_us(200));
  EXPECT_EQ(eng.events_processed(), 0u);
}

// --- generation-tagged EventId semantics -----------------------------------
//
// EventIds pack (slot, generation); a slot is recycled as soon as its event
// fires or is cancelled, but the generation bump must keep every stale handle
// inert forever.

TEST(Engine, CancelAfterFireReturnsFalse) {
  Engine eng;
  bool fired = false;
  const EventId id = eng.at(Time::from_us(10), [&] { fired = true; });
  eng.run();
  EXPECT_TRUE(fired);
  EXPECT_FALSE(eng.cancel(id));
}

TEST(Engine, ReusedSlotNeverCancelsWrongEvent) {
  Engine eng;
  // Fire one event so its pool slot returns to the free list, then schedule a
  // new event that necessarily reuses that slot (single-event engine). The
  // stale handle must not touch the new occupant.
  const EventId stale = eng.at(Time::from_us(10), [] {});
  eng.run();
  bool fired = false;
  const EventId fresh = eng.at(Time::from_us(20), [&] { fired = true; });
  EXPECT_NE(stale, fresh);
  EXPECT_FALSE(eng.cancel(stale));
  eng.run();
  EXPECT_TRUE(fired);
}

TEST(Engine, ManyGenerationsOfSlotReuseStayIsolated) {
  Engine eng;
  std::vector<EventId> dead;
  for (int round = 0; round < 64; ++round) {
    const EventId id = eng.at(eng.now() + Duration::us(1), [] {});
    dead.push_back(id);
    eng.run();
  }
  int fired = 0;
  eng.at(eng.now() + Duration::us(1), [&] { ++fired; });
  // None of the 64 retired handles may cancel (or double-free under) the
  // live event, regardless of how slots were recycled.
  for (const EventId id : dead) EXPECT_FALSE(eng.cancel(id));
  eng.run();
  EXPECT_EQ(fired, 1);
}

TEST(Engine, RunUntilOverOnlyCancelledEventsAdvancesClock) {
  Engine eng;
  for (int i = 1; i <= 8; ++i) {
    const EventId id = eng.at(Time::from_us(i * 10), [] {});
    eng.cancel(id);
  }
  EXPECT_TRUE(eng.idle());
  eng.run_until(Time::from_us(500));
  EXPECT_EQ(eng.now(), Time::from_us(500));
  EXPECT_EQ(eng.events_processed(), 0u);
}

TEST(Engine, IdleCountsLiveEventsNotHeapEntries) {
  Engine eng;
  const EventId a = eng.at(Time::from_us(10), [] {});
  const EventId b = eng.at(Time::from_us(20), [] {});
  EXPECT_FALSE(eng.idle());
  eng.cancel(a);
  EXPECT_FALSE(eng.idle());  // b still live
  eng.cancel(b);
  // Both heap entries still exist physically, but no live work remains.
  EXPECT_TRUE(eng.idle());
}

TEST(Engine, HeapOrderingMatchesReferenceComparator) {
  // Golden check: the 4-ary pooled heap must pop in exactly the order the
  // old binary-heap comparator defined — (time asc, schedule-seq asc).
  // Schedule a deterministic pseudo-random burst, interleave cancels, and
  // compare the fired order against a reference sort.
  Engine eng;
  struct Ref {
    std::int64_t at_us;
    int seq;
  };
  std::vector<Ref> reference;
  std::vector<int> fired;
  std::uint64_t rng = 0x9e3779b97f4a7c15ull;
  auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  std::vector<EventId> ids;
  for (int i = 0; i < 500; ++i) {
    // Small time range so equal timestamps are common and the seq
    // tie-break is genuinely exercised.
    const auto at_us = static_cast<std::int64_t>(next() % 16);
    ids.push_back(eng.at(Time::from_us(at_us), [&fired, i] { fired.push_back(i); }));
    reference.push_back({at_us, i});
  }
  for (int i = 0; i < 500; i += 7) {
    eng.cancel(ids[static_cast<std::size_t>(i)]);
    reference[static_cast<std::size_t>(i)].seq = -1;  // mark cancelled
  }
  std::stable_sort(reference.begin(), reference.end(),
                   [](const Ref& a, const Ref& b) { return a.at_us < b.at_us; });
  std::vector<int> expected;
  for (const Ref& r : reference)
    if (r.seq >= 0) expected.push_back(r.seq);
  eng.run();
  EXPECT_EQ(fired, expected);
}

}  // namespace
}  // namespace scale::sim

// MLB unit behaviours: statelessness, GUTI assignment, ring routing,
// least-loaded choice, code-based Active-mode stickiness.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "testbed/testbed.h"

namespace scale {
namespace {

using testbed::Testbed;

struct ScaleWorld {
  Testbed tb;
  Testbed::Site* site;
  std::unique_ptr<core::ScaleCluster> cluster;

  explicit ScaleWorld(std::size_t mmps = 2, std::size_t enbs = 2) {
    site = &tb.add_site(enbs);
    core::ScaleCluster::Config cfg;
    cfg.initial_mmps = mmps;
    cluster = std::make_unique<core::ScaleCluster>(
        tb.fabric(), site->sgw->node(), tb.hss().node(), cfg);
    for (auto& enb : site->enbs) cluster->connect_enb(*enb);
  }
};

TEST(Mlb, MembershipBuildsRingAndCodeMap) {
  ScaleWorld w(3);
  EXPECT_EQ(w.cluster->mlb().ring().node_count(), 3u);
  // Ring nodes are the MMP fabric ids.
  for (auto& mmp : w.cluster->mmps())
    EXPECT_TRUE(w.cluster->mlb().ring().contains(mmp->node()));
}

TEST(Mlb, StaleMembershipVersionIgnored) {
  ScaleWorld w(2);
  std::vector<proto::RingUpdate::Member> empty;
  w.cluster->mlb().apply_membership(empty, /*version=*/0);
  EXPECT_EQ(w.cluster->mlb().ring().node_count(), 2u);
}

TEST(Mlb, AttachAssignsGutiWithMlbCode) {
  ScaleWorld w;
  epc::Ue& ue = w.tb.make_ue(*w.site, 0, 0.5);
  ue.attach();
  w.tb.run_for(Duration::sec(2.0));
  ASSERT_TRUE(ue.registered());
  // §4.3.1: the MLB assigns the GUTI; its MME code is the MLB's logical id.
  EXPECT_EQ(ue.guti()->mme_code, w.cluster->mlb().mme_code());
  EXPECT_GE(w.cluster->mlb().initial_routed(), 1u);
}

TEST(Mlb, DeviceLandsOnPreferenceListVm) {
  ScaleWorld w(4);
  epc::Ue& ue = w.tb.make_ue(*w.site, 0, 0.5);
  ue.attach();
  w.tb.run_for(Duration::sec(2.0));
  ASSERT_TRUE(ue.registered());
  const std::uint64_t key = ue.guti()->key();
  const auto prefs = w.cluster->ring().preference_list(key, 2);
  // The context must live on the master or the replica target VM.
  bool found = false;
  for (auto& mmp : w.cluster->mmps()) {
    if (mmp->app().store().contains(key)) {
      found = found || (mmp->node() == prefs[0] || mmp->node() == prefs[1]);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Mlb, ActiveModeRequestsStickToServingVm) {
  ScaleWorld w(4);
  epc::Ue& ue = w.tb.make_ue(*w.site, 0, 0.5);
  ue.attach();
  w.tb.run_for(Duration::sec(2.0));
  ASSERT_TRUE(ue.connected());
  // The mme_ue_id the UE learned carries the serving VM's code; handover
  // (an Active-mode request) must be processed by that same VM.
  const std::uint8_t serving_code = ue.mme_ue_id().mmp_id();
  const auto before = w.cluster->mlb().sticky_routed();
  ue.handover(w.site->enb(1));
  w.tb.run_for(Duration::sec(1.0));
  EXPECT_EQ(ue.completed(proto::ProcedureType::kHandover), 1u);
  EXPECT_GT(w.cluster->mlb().sticky_routed(), before);
  EXPECT_EQ(ue.mme_ue_id().mmp_id(), serving_code);
}

TEST(Mlb, KeepsNoPerDeviceState) {
  // Register many devices: the MLB's memory is the ring plus a load scalar
  // per VM — nothing grows with the population (contrast with SimpleLb's
  // routing_table_size()). We verify indirectly: routing still works after
  // the ring is rebuilt from scratch, which would lose any per-device map.
  ScaleWorld w(3);
  auto ues = w.tb.make_ues(*w.site, 60, {0.5});
  w.tb.register_all(*w.site, Duration::sec(3.0), Duration::sec(8.0));

  std::vector<proto::RingUpdate::Member> members;
  for (auto& mmp : w.cluster->mmps())
    members.push_back({mmp->node(), mmp->vm_code()});
  w.cluster->mlb().apply_membership(members, /*version=*/1000);

  std::size_t ok = 0;
  for (epc::Ue* ue : ues)
    if (ue->registered() && !ue->connected() && ue->service_request()) ++ok;
  w.tb.run_for(Duration::sec(3.0));
  std::size_t connected = 0;
  for (epc::Ue* ue : ues)
    if (ue->connected()) ++connected;
  EXPECT_GT(ok, 40u);
  EXPECT_GE(connected, ok * 9 / 10);
}

}  // namespace
}  // namespace scale

// OverloadGovernor — watermark state machine, priority-ordered shedding,
// deterministic token-bucket backpressure, paging-defer clamping, and the
// governed cluster end to end (DESIGN.md §9).
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/cluster.h"
#include "core/overload.h"
#include "testbed/testbed.h"
#include "workload/arrivals.h"

namespace scale {
namespace {

using core::OverloadGovernor;
using core::PressureLevel;
using core::PressureSignals;
using core::TokenBucket;
using proto::ProcedureType;
using testbed::Testbed;

OverloadGovernor::Config governor_cfg() {
  OverloadGovernor::Config cfg;
  cfg.enabled = true;
  cfg.backlog_ref = Duration::ms(100.0);
  cfg.low_watermark = 0.5;
  cfg.high_watermark = 1.0;
  cfg.overload_watermark = 1.5;
  cfg.hysteresis = 0.2;
  cfg.inflight_ref = 100000;  // keep the score backlog-driven in these tests
  return cfg;
}

PressureSignals backlog_ms(double ms) {
  PressureSignals s;
  s.backlog = Duration::ms(ms);
  return s;
}

TEST(OverloadGovernor, WatermarkHysteresisDoesNotFlap) {
  OverloadGovernor g(governor_cfg());
  const Time t = Time::zero();

  ASSERT_EQ(g.assess(t, backlog_ms(40.0)), PressureLevel::kNominal);
  ASSERT_EQ(g.assess(t, backlog_ms(60.0)), PressureLevel::kElevated);
  EXPECT_EQ(g.level_changes(), 1u);

  // Oscillation around the low watermark (0.5) stays inside the hysteresis
  // band [0.3, 0.5): the level must latch, not flap.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(g.assess(t, backlog_ms(45.0)), PressureLevel::kElevated);
    EXPECT_EQ(g.assess(t, backlog_ms(55.0)), PressureLevel::kElevated);
  }
  EXPECT_EQ(g.level_changes(), 1u);

  // Clearing the watermark by the hysteresis margin releases the band.
  EXPECT_EQ(g.assess(t, backlog_ms(25.0)), PressureLevel::kNominal);
  EXPECT_EQ(g.level_changes(), 2u);
}

TEST(OverloadGovernor, AscendsImmediatelyDescendsBandByBand) {
  OverloadGovernor g(governor_cfg());
  const Time t = Time::zero();

  // A surge jumps straight to kOverload — protection must not lag.
  EXPECT_EQ(g.assess(t, backlog_ms(160.0)), PressureLevel::kOverload);

  // 0.85 clears the overload watermark (1.5 − 0.2) but not the high one
  // (1.0 − 0.2): descent stops at kHigh.
  EXPECT_EQ(g.assess(t, backlog_ms(85.0)), PressureLevel::kHigh);
  EXPECT_EQ(g.assess(t, backlog_ms(75.0)), PressureLevel::kElevated);
  EXPECT_EQ(g.assess(t, backlog_ms(20.0)), PressureLevel::kNominal);
}

TEST(OverloadGovernor, ShedsInPriorityOrderAcrossBands) {
  OverloadGovernor g(governor_cfg());
  const Time t = Time::zero();

  // kElevated: only TAU is shed.
  auto d = g.admit(t, backlog_ms(60.0), ProcedureType::kTrackingAreaUpdate);
  EXPECT_FALSE(d.admit);
  EXPECT_EQ(d.level, PressureLevel::kElevated);
  EXPECT_TRUE(g.admit(t, backlog_ms(60.0), ProcedureType::kServiceRequest)
                  .admit);
  EXPECT_TRUE(g.admit(t, backlog_ms(60.0), ProcedureType::kAttach).admit);

  // kHigh: Service Request and Handover join; Attach still admitted.
  EXPECT_FALSE(g.admit(t, backlog_ms(110.0), ProcedureType::kServiceRequest)
                   .admit);
  EXPECT_FALSE(g.admit(t, backlog_ms(110.0), ProcedureType::kHandover)
                   .admit);
  EXPECT_TRUE(g.admit(t, backlog_ms(110.0), ProcedureType::kAttach).admit);

  // kOverload: Attach sheds last; Detach never (it frees state).
  EXPECT_FALSE(g.admit(t, backlog_ms(160.0), ProcedureType::kAttach).admit);
  EXPECT_TRUE(g.admit(t, backlog_ms(160.0), ProcedureType::kDetach).admit);

  EXPECT_EQ(g.shed_of(ProcedureType::kTrackingAreaUpdate), 1u);
  EXPECT_EQ(g.shed_of(ProcedureType::kServiceRequest), 1u);
  EXPECT_EQ(g.shed_of(ProcedureType::kHandover), 1u);
  EXPECT_EQ(g.shed_of(ProcedureType::kAttach), 1u);
  EXPECT_EQ(g.shed_of(ProcedureType::kDetach), 0u);
  EXPECT_EQ(g.shed_total(), 4u);
}

TEST(OverloadGovernor, ShedRankOrdersTauBeforeSrBeforeAttach) {
  const int tau = OverloadGovernor::shed_rank(
      ProcedureType::kTrackingAreaUpdate);
  const int sr = OverloadGovernor::shed_rank(ProcedureType::kServiceRequest);
  const int ho = OverloadGovernor::shed_rank(ProcedureType::kHandover);
  const int attach = OverloadGovernor::shed_rank(ProcedureType::kAttach);
  EXPECT_LT(tau, sr);
  EXPECT_EQ(sr, ho);
  EXPECT_LT(sr, attach);
  EXPECT_LT(attach, OverloadGovernor::shed_rank(ProcedureType::kPaging));
  EXPECT_LT(attach, OverloadGovernor::shed_rank(ProcedureType::kDetach));
}

TEST(OverloadGovernor, PagingDeferStretchesWithLevelAndCaps) {
  auto cfg = governor_cfg();
  cfg.paging_defer_unit = Duration::ms(100.0);
  cfg.max_paging_defer = Duration::ms(300.0);
  OverloadGovernor g(cfg);
  const Time t = Time::zero();

  EXPECT_EQ(g.paging_defer(), Duration::zero());
  g.assess(t, backlog_ms(60.0));
  EXPECT_EQ(g.paging_defer(), Duration::ms(100.0));
  g.assess(t, backlog_ms(110.0));
  EXPECT_EQ(g.paging_defer(), Duration::ms(200.0));
  g.assess(t, backlog_ms(160.0));  // 100 * 2^2 = 400, capped at 300
  EXPECT_EQ(g.paging_defer(), Duration::ms(300.0));
}

TEST(OverloadGovernor, AdaptiveConcurrencyProbesUpAndBacksOff) {
  auto cfg = governor_cfg();
  cfg.adaptive_concurrency = true;
  cfg.ac_initial_limit = 64.0;
  cfg.ac_step = 8.0;
  cfg.ac_decrease = 0.5;
  cfg.ac_interval = Duration::ms(100.0);
  cfg.ac_backlog_target = Duration::ms(20.0);
  OverloadGovernor g(cfg);

  // Near the limit with latency under the knee: additive probe upward.
  PressureSignals busy;
  busy.in_flight = 60;  // >= 0.8 * 64
  g.assess(Time::zero(), busy);
  EXPECT_DOUBLE_EQ(g.concurrency_limit(), 72.0);

  // Within the same interval no further step is taken.
  g.assess(Time::from_sec(0.05), busy);
  EXPECT_DOUBLE_EQ(g.concurrency_limit(), 72.0);

  // Past the knee: multiplicative decrease.
  g.assess(Time::from_sec(0.2), backlog_ms(30.0));
  EXPECT_DOUBLE_EQ(g.concurrency_limit(), 36.0);
}

TEST(OverloadGovernor, DisabledByDefault) {
  OverloadGovernor g{OverloadGovernor::Config{}};
  EXPECT_FALSE(g.enabled());
  EXPECT_EQ(g.level(), PressureLevel::kNominal);
}

TEST(OverloadTokenBucket, RefillIsDeterministicFromSimTime) {
  TokenBucket b(/*rate=*/10.0, /*burst=*/5.0, Time::zero());
  for (int i = 0; i < 5; ++i)
    EXPECT_TRUE(b.try_take(Time::zero())) << "burst credit " << i;
  EXPECT_FALSE(b.try_take(Time::zero())) << "bucket must be dry";

  // Lazy refill is a pure function of elapsed sim time: 100 ms at 10/s
  // yields exactly one token.
  EXPECT_DOUBLE_EQ(b.available(Time::from_sec(0.1)), 1.0);
  EXPECT_TRUE(b.try_take(Time::from_sec(0.1)));
  EXPECT_FALSE(b.try_take(Time::from_sec(0.1)));

  // Refill caps at the burst size no matter how long the bucket idles.
  EXPECT_DOUBLE_EQ(b.available(Time::from_sec(1000.0)), 5.0);
}

// ---------------------------------------------------------------- cluster

struct GovernedWorld {
  Testbed tb;
  Testbed::Site* site;
  std::unique_ptr<core::ScaleCluster> cluster;

  explicit GovernedWorld(core::ScaleCluster::Config cfg,
                         bool reliable = false) {
    if (reliable) {
      epc::TransportConfig t;
      t.reliable = true;
      tb.fabric().set_transport(t);
    }
    site = &tb.add_site(2);
    cluster = std::make_unique<core::ScaleCluster>(
        tb.fabric(), site->sgw->node(), tb.hss().node(), cfg);
    for (auto& enb : site->enbs) cluster->connect_enb(*enb);
  }
};

TEST(OverloadIntegration, GovernedClusterShedsDeferrableNeverAttach) {
  core::ScaleCluster::Config cfg;
  cfg.initial_mmps = 2;
  cfg.vm_template.cpu_speed = 0.05;
  cfg.vm_template.app.profile.inactivity_timeout = Duration::ms(400.0);
  cfg.mmp_governor.enabled = true;
  cfg.mmp_governor.backlog_ref = Duration::ms(50.0);
  cfg.mmp_governor.low_watermark = 0.5;
  cfg.mmp_governor.high_watermark = 1.0;
  // Attach band unreachable: the ladder must stop at Service Request.
  cfg.mmp_governor.overload_watermark = 50.0;
  GovernedWorld w(cfg);

  auto ues = w.tb.make_ues(*w.site, 400, {0.8});
  w.tb.register_all(*w.site, Duration::sec(20.0), Duration::sec(6.0));

  workload::OpenLoopDriver::Config drv;
  drv.rate_per_sec = 500.0;  // several times the slow pool's capacity
  drv.mix.service_request = 0.7;
  drv.mix.tau = 0.3;
  workload::OpenLoopDriver driver(w.tb.engine(), ues, drv);
  driver.start(w.tb.engine().now() + Duration::sec(3.0));
  w.tb.run_for(Duration::sec(4.0));

  std::uint64_t sheds = 0, sr_sheds = 0, tau_sheds = 0, attach_sheds = 0;
  for (const auto& mmp : w.cluster->mmps()) {
    sheds += mmp->overload_sheds();
    sr_sheds += mmp->sheds_of(ProcedureType::kServiceRequest);
    tau_sheds += mmp->sheds_of(ProcedureType::kTrackingAreaUpdate);
    attach_sheds += mmp->sheds_of(ProcedureType::kAttach);
  }
  EXPECT_GT(sheds, 0u);
  EXPECT_GT(sr_sheds, 0u);
  EXPECT_GT(tau_sheds, 0u);
  EXPECT_EQ(attach_sheds, 0u)
      << "attach must not shed below the overload band";
  EXPECT_EQ(sheds, sr_sheds + tau_sheds);

  std::uint64_t rejects = 0, typed = 0;
  for (const auto& mlb : w.cluster->mlbs()) {
    rejects += mlb->overload_rejects();
    typed += mlb->overload_rejects_of(ProcedureType::kServiceRequest) +
             mlb->overload_rejects_of(ProcedureType::kTrackingAreaUpdate);
  }
  EXPECT_EQ(rejects, sheds) << "every shed reaches the MLB";
  EXPECT_EQ(typed, rejects) << "per-procedure reject counters must tally";

  // Load silenced: pressure decays via the utilization hook and every
  // governor relaxes back to nominal.
  w.tb.run_for(Duration::sec(5.0));
  for (const auto& mmp : w.cluster->mmps())
    EXPECT_EQ(mmp->governor().level(), PressureLevel::kNominal);
}

TEST(OverloadIntegration, PagingDeferClampedToTransportRetryHorizon) {
  core::ScaleCluster::Config cfg;
  cfg.mmp_governor.enabled = true;
  cfg.mmp_governor.max_paging_defer = Duration::sec(60.0);

  GovernedWorld reliable(cfg, /*reliable=*/true);
  const Duration horizon = reliable.tb.fabric().transport().retry_horizon();
  ASSERT_GT(horizon, Duration::zero());
  for (const auto& mmp : reliable.cluster->mmps()) {
    EXPECT_LE(mmp->governor().config().max_paging_defer, horizon)
        << "a deferred page must not outlive its own retransmissions";
  }

  // Without the reliable shim there is no horizon to respect.
  GovernedWorld plain(cfg, /*reliable=*/false);
  for (const auto& mmp : plain.cluster->mmps())
    EXPECT_EQ(mmp->governor().config().max_paging_defer, Duration::sec(60.0));
}

// --------------------------------------------------------------- ablation

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

int run_bench_json(const std::string& out_path) {
  const std::string cmd = std::string(SCALE_ABLATION_OVERLOAD_BIN) +
                          " --json " + out_path + " >/dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(OverloadAblation, JsonOutputIsByteIdenticalAcrossRuns) {
  const std::string a = ::testing::TempDir() + "ablation_overload_a.json";
  const std::string b = ::testing::TempDir() + "ablation_overload_b.json";
  ASSERT_EQ(run_bench_json(a), 0);
  ASSERT_EQ(run_bench_json(b), 0);
  const std::string ja = slurp(a);
  const std::string jb = slurp(b);
  ASSERT_FALSE(ja.empty());
  EXPECT_EQ(ja, jb) << "governed runs must be bit-reproducible";
  std::remove(a.c_str());
  std::remove(b.c_str());
}

}  // namespace
}  // namespace scale

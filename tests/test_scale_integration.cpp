// End-to-end SCALE cluster behaviour: full procedures through MLB + MMPs,
// consistent-hash placement, asynchronous replication, replica consistency,
// forward-to-master, and fine-grained load balancing.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "testbed/testbed.h"
#include "workload/arrivals.h"

namespace scale {
namespace {

using epc::ContextRole;
using testbed::Testbed;

struct ScaleWorld {
  Testbed tb;
  Testbed::Site* site;
  std::unique_ptr<core::ScaleCluster> cluster;

  explicit ScaleWorld(std::size_t mmps = 2, std::size_t enbs = 2,
                      core::ScaleCluster::Config cfg = {}) {
    site = &tb.add_site(enbs);
    cfg.initial_mmps = mmps;
    cluster = std::make_unique<core::ScaleCluster>(
        tb.fabric(), site->sgw->node(), tb.hss().node(), cfg);
    for (auto& enb : site->enbs) cluster->connect_enb(*enb);
  }

  core::MmpNode* holder_of(std::uint64_t key, ContextRole role) {
    for (auto& mmp : cluster->mmps()) {
      auto* ctx = mmp->app().store().find(key);
      if (ctx != nullptr && ctx->role == role) return mmp.get();
    }
    return nullptr;
  }
};

TEST(ScaleIntegration, FullProcedureSuiteWorks) {
  ScaleWorld w(3);
  epc::Ue& ue = w.tb.make_ue(*w.site, 0, 0.9);

  ASSERT_TRUE(ue.attach());
  w.tb.run_for(Duration::sec(2.0));
  EXPECT_TRUE(ue.connected());

  ASSERT_TRUE(ue.handover(w.site->enb(1)));
  w.tb.run_for(Duration::sec(1.0));
  EXPECT_EQ(ue.completed(proto::ProcedureType::kHandover), 1u);

  w.tb.run_for(Duration::sec(7.0));  // fall idle
  ASSERT_FALSE(ue.connected());

  ASSERT_TRUE(ue.tracking_area_update());
  w.tb.run_for(Duration::sec(1.0));
  EXPECT_EQ(ue.completed(proto::ProcedureType::kTrackingAreaUpdate), 1u);

  ASSERT_TRUE(ue.service_request());
  w.tb.run_for(Duration::sec(1.0));
  EXPECT_TRUE(ue.connected());

  w.tb.run_for(Duration::sec(7.0));
  ASSERT_TRUE(ue.detach());
  w.tb.run_for(Duration::sec(1.0));
  EXPECT_FALSE(ue.registered());
  EXPECT_EQ(w.cluster->registered_devices(), 0u);
  EXPECT_EQ(w.tb.failures(), 0u);
}

TEST(ScaleIntegration, MasterPlacedByRingAndReplicatedToNeighbor) {
  ScaleWorld w(4);
  epc::Ue& ue = w.tb.make_ue(*w.site, 0, 0.9);
  ue.attach();
  // Run long enough for attach + async replication + idle-time bulk sync.
  w.tb.run_for(Duration::sec(10.0));
  ASSERT_TRUE(ue.registered());

  const std::uint64_t key = ue.guti()->key();
  const auto prefs = w.cluster->ring().preference_list(key, 2);
  ASSERT_EQ(prefs.size(), 2u);

  core::MmpNode* master = w.holder_of(key, ContextRole::kMaster);
  core::MmpNode* replica = w.holder_of(key, ContextRole::kReplica);
  ASSERT_NE(master, nullptr);
  ASSERT_NE(replica, nullptr);
  EXPECT_EQ(master->node(), prefs[0]);
  EXPECT_EQ(replica->node(), prefs[1]);
}

TEST(ScaleIntegration, ReplicaSyncedOnIdleTransition) {
  ScaleWorld w(3);
  epc::Ue& ue = w.tb.make_ue(*w.site, 0, 0.9);
  ue.attach();
  w.tb.run_for(Duration::sec(10.0));  // attach + idle sync
  ASSERT_FALSE(ue.connected());

  const std::uint64_t key = ue.guti()->key();
  core::MmpNode* master = w.holder_of(key, ContextRole::kMaster);
  core::MmpNode* replica = w.holder_of(key, ContextRole::kReplica);
  ASSERT_NE(master, nullptr);
  ASSERT_NE(replica, nullptr);
  const auto& mrec = master->app().store().find(key)->rec;
  const auto& rrec = replica->app().store().find(key)->rec;
  // Replica matches the master's post-idle state (version included).
  EXPECT_EQ(rrec.version, mrec.version);
  EXPECT_EQ(rrec.active, mrec.active);
  EXPECT_FALSE(rrec.active);
}

TEST(ScaleIntegration, ReplicaCanServeWhenMasterLoaded) {
  // §4.6: at Idle→Active the MLB picks the least loaded of {master,
  // replica}. Saturate the master; the service request must still complete
  // (served by the replica) with low delay.
  ScaleWorld w(2);
  epc::Ue& ue = w.tb.make_ue(*w.site, 0, 0.9);
  ue.attach();
  w.tb.run_for(Duration::sec(10.0));
  ASSERT_FALSE(ue.connected());

  const std::uint64_t key = ue.guti()->key();
  core::MmpNode* master = w.holder_of(key, ContextRole::kMaster);
  ASSERT_NE(master, nullptr);
  // Pin a huge CPU backlog on the master and let load reports propagate.
  master->cpu().consume(Duration::sec(30.0));
  w.tb.run_for(Duration::sec(1.0));

  w.tb.delays().clear();
  ASSERT_TRUE(ue.service_request());
  w.tb.run_for(Duration::sec(2.0));
  EXPECT_TRUE(ue.connected());
  // Served without waiting out the master's 30 s backlog.
  EXPECT_LT(w.tb.delays().bucket("service_request").max(), 1000.0);
}

TEST(ScaleIntegration, StatelessVmForwardsToMaster) {
  ScaleWorld w(4);
  epc::Ue& ue = w.tb.make_ue(*w.site, 0, 0.01);
  // Suppress replication so only the master holds state.
  w.cluster->policy().local_copies = 1;
  ue.attach();
  w.tb.run_for(Duration::sec(10.0));
  ASSERT_FALSE(ue.connected());

  const std::uint64_t key = ue.guti()->key();
  core::MmpNode* master = w.holder_of(key, ContextRole::kMaster);
  ASSERT_NE(master, nullptr);
  EXPECT_EQ(w.holder_of(key, ContextRole::kReplica), nullptr);

  // Make the master look heavily loaded so the MLB prefers the (stateless)
  // second preference; that VM must forward to the master (§4.6 task 2).
  master->cpu().consume(Duration::sec(2.0));
  w.tb.run_for(Duration::sec(1.0));
  const auto forwards_before = [&] {
    std::uint64_t n = 0;
    for (auto& mmp : w.cluster->mmps()) n += mmp->forwarded_to_master();
    return n;
  }();
  ASSERT_TRUE(ue.service_request());
  w.tb.run_for(Duration::sec(4.0));
  std::uint64_t forwards_after = 0;
  for (auto& mmp : w.cluster->mmps())
    forwards_after += mmp->forwarded_to_master();
  EXPECT_TRUE(ue.connected());
  EXPECT_GT(forwards_after, forwards_before);
}

TEST(ScaleIntegration, TokensSpreadOneVmsReplicasAcrossOthers) {
  // §4.3.2 placement: the replicas of one VM's masters land on MANY other
  // VMs (tokens), unlike SIMPLE's single buddy (Fig. 9's root cause).
  ScaleWorld w(5);
  w.tb.make_ues(*w.site, 300, {0.9});
  w.tb.register_all(*w.site, Duration::sec(5.0), Duration::sec(10.0));

  auto& vm0 = *w.cluster->mmps()[0];
  const auto master_keys = vm0.app().store().keys_if(
      [](const mme::UeContext& c) { return c.role == ContextRole::kMaster; });
  ASSERT_GT(master_keys.size(), 20u);
  std::set<sim::NodeId> replica_holders;
  for (std::uint64_t key : master_keys) {
    for (auto& mmp : w.cluster->mmps()) {
      if (mmp->node() == vm0.node()) continue;
      const auto* ctx = mmp->app().store().find(key);
      if (ctx != nullptr && ctx->role == ContextRole::kReplica)
        replica_holders.insert(mmp->node());
    }
  }
  EXPECT_GE(replica_holders.size(), 3u)
      << "token-based placement must spread replicas, not pick one buddy";
}

TEST(ScaleIntegration, LoadSpreadsAcrossVms) {
  ScaleWorld w(4);
  auto ues = w.tb.make_ues(*w.site, 200, {0.9});
  w.tb.register_all(*w.site, Duration::sec(4.0), Duration::sec(8.0));

  workload::OpenLoopDriver::Config cfg;
  cfg.rate_per_sec = 400.0;
  workload::OpenLoopDriver driver(w.tb.engine(), ues, cfg);
  driver.start(w.tb.engine().now() + Duration::sec(10.0));
  w.tb.run_for(Duration::sec(12.0));

  // Every VM took a nontrivial share of the requests.
  for (auto& mmp : w.cluster->mmps())
    EXPECT_GT(mmp->requests_handled(), 100u);
}

}  // namespace
}  // namespace scale

// dMME baseline: stateless processing nodes + centralized state store.
#include <gtest/gtest.h>

#include "mme/dmme.h"
#include "testbed/testbed.h"
#include "workload/arrivals.h"

namespace scale {
namespace {

using testbed::Testbed;

struct DmmeWorld {
  Testbed tb;
  Testbed::Site* site;
  std::unique_ptr<mme::DmmeStateStore> store;
  std::unique_ptr<mme::DmmeLb> lb;
  std::vector<std::unique_ptr<mme::DmmeNode>> nodes;

  explicit DmmeWorld(std::size_t node_count = 3) {
    site = &tb.add_site(2);
    store = std::make_unique<mme::DmmeStateStore>(tb.fabric());
    mme::DmmeLb::Config lb_cfg;
    lb = std::make_unique<mme::DmmeLb>(tb.fabric(), lb_cfg);
    for (std::size_t i = 0; i < node_count; ++i) {
      mme::DmmeNode::Config cfg;
      cfg.base.sgw = site->sgw->node();
      cfg.base.hss = tb.hss().node();
      cfg.base.app.assign_guti_locally = false;
      cfg.base.app.mme_code = lb_cfg.mme_code;
      cfg.base.app.vm_code = static_cast<std::uint8_t>(i + 1);
      cfg.store = store->node();
      nodes.push_back(std::make_unique<mme::DmmeNode>(tb.fabric(), cfg));
      lb->add_node(*nodes.back());
    }
    for (auto& enb : site->enbs)
      enb->add_mme(lb->node(), lb_cfg.mme_code, 1.0);
  }
};

TEST(Dmme, AttachWritesStateToStore) {
  DmmeWorld w;
  epc::Ue& ue = w.tb.make_ue(*w.site, 0, 0.5);
  EXPECT_TRUE(ue.attach());
  w.tb.run_for(Duration::sec(2.0));
  EXPECT_TRUE(ue.registered());
  EXPECT_TRUE(ue.connected());
  EXPECT_EQ(w.store->size(), 1u);
  EXPECT_GE(w.store->writes(), 1u);
}

TEST(Dmme, NodeEvictsLocalCopyAtIdle) {
  DmmeWorld w;
  epc::Ue& ue = w.tb.make_ue(*w.site, 0, 0.5);
  ue.attach();
  w.tb.run_for(Duration::sec(8.0));  // attach + fall idle
  ASSERT_TRUE(ue.registered());
  ASSERT_FALSE(ue.connected());
  // Stateless between Active runs: no node holds a local copy, only the
  // store does.
  std::size_t local = 0;
  for (auto& node : w.nodes) local += node->app().store().size();
  EXPECT_EQ(local, 0u);
  EXPECT_EQ(w.store->size(), 1u);
}

TEST(Dmme, ServiceRequestFetchesFromStore) {
  DmmeWorld w;
  epc::Ue& ue = w.tb.make_ue(*w.site, 0, 0.5);
  ue.attach();
  w.tb.run_for(Duration::sec(8.0));
  ASSERT_FALSE(ue.connected());
  const std::uint64_t fetches_before = w.store->fetches();

  EXPECT_TRUE(ue.service_request());
  w.tb.run_for(Duration::sec(2.0));
  EXPECT_TRUE(ue.connected());
  EXPECT_GT(w.store->fetches(), fetches_before);
}

TEST(Dmme, AnyNodeCanServeAnyDevice) {
  // Round-robin at the LB: successive Active runs of the same device land
  // on different nodes, which only works because state is central.
  DmmeWorld w(3);
  epc::Ue& ue = w.tb.make_ue(*w.site, 0, 0.5);
  ue.attach();
  w.tb.run_for(Duration::sec(8.0));
  std::set<std::uint8_t> serving_codes;
  for (int round = 0; round < 6; ++round) {
    if (!ue.connected() && ue.service_request()) {
      w.tb.run_for(Duration::sec(1.0));
      serving_codes.insert(ue.mme_ue_id().mmp_id());
    }
    w.tb.run_for(Duration::sec(7.0));  // back to idle (and evicted)
  }
  EXPECT_GE(serving_codes.size(), 2u)
      << "round robin should rotate the serving node";
  EXPECT_TRUE(ue.registered());
}

TEST(Dmme, DetachDeletesFromStore) {
  DmmeWorld w;
  epc::Ue& ue = w.tb.make_ue(*w.site, 0, 0.5);
  ue.attach();
  w.tb.run_for(Duration::sec(2.0));
  ASSERT_TRUE(ue.registered());
  ue.detach();
  w.tb.run_for(Duration::sec(2.0));
  EXPECT_FALSE(ue.registered());
  EXPECT_EQ(w.store->size(), 0u);
}

TEST(Dmme, UnknownDeviceServiceRequestRejected) {
  DmmeWorld w;
  epc::Ue& ue = w.tb.make_ue(*w.site, 0, 0.5);
  ue.attach();
  w.tb.run_for(Duration::sec(8.0));
  ASSERT_FALSE(ue.connected());
  // Wipe the store behind the system's back.
  proto::ReplicaDelete del;
  del.guti = *ue.guti();
  w.tb.fabric().send(w.lb->node(), w.store->node(),
                     proto::pdu_of(proto::ClusterMessage{del}));
  w.tb.run_for(Duration::sec(1.0));
  ASSERT_EQ(w.store->size(), 0u);

  // Auto-reattach (testbed failure sink) recovers the device afterwards.
  ue.service_request();
  w.tb.run_for(Duration::sec(5.0));
  EXPECT_TRUE(ue.registered());
  EXPECT_GE(w.tb.failures(), 1u);
}

TEST(Dmme, ConcurrentFetchesForSameDeviceCoalesce) {
  DmmeWorld w(1);
  auto ues = w.tb.make_ues(*w.site, 40, {0.8});
  w.tb.register_all(*w.site, Duration::sec(3.0), Duration::sec(8.0));
  const std::uint64_t fetches_before = w.store->fetches();
  std::size_t issued = 0;
  for (epc::Ue* ue : ues)
    if (ue->registered() && !ue->connected() && ue->service_request())
      ++issued;
  w.tb.run_for(Duration::sec(3.0));
  // One fetch per device run, not per message.
  EXPECT_LE(w.store->fetches() - fetches_before, issued + 5);
  std::size_t connected = 0;
  for (epc::Ue* ue : ues)
    if (ue->connected()) ++connected;
  EXPECT_GE(connected, issued * 9 / 10);
}

}  // namespace
}  // namespace scale

// Codec robustness fuzz: random byte soup and random mutations of valid
// PDUs must either decode or throw CodecError — never crash, hang, or
// return trailing-garbage successes.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "proto/codec.h"

namespace scale::proto {
namespace {

TEST(CodecFuzz, RandomBytesNeverCrash) {
  Rng rng(20260708);
  for (int trial = 0; trial < 20000; ++trial) {
    const std::size_t len = rng.next_below(64);
    std::vector<std::uint8_t> bytes(len);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_below(256));
    try {
      const Pdu pdu = decode_pdu(bytes);
      // If it decoded, re-encoding must reproduce the input exactly
      // (canonical wire form, no trailing slack accepted).
      EXPECT_EQ(encode_pdu(pdu), bytes);
    } catch (const CodecError&) {
      // Expected for almost all inputs.
    }
  }
}

TEST(CodecFuzz, MutatedValidPdusNeverCrash) {
  Rng rng(42);
  NasAttachRequest nas;
  nas.imsi = 123456789012345ull;
  nas.old_guti = Guti{310, 17, 3, 0xBEEF01};
  nas.tac = 7;
  const auto base = encode_pdu(
      make_pdu(InitialUeMessage{9, 8, 7, NasMessage{nas}}));

  int decoded = 0;
  for (int trial = 0; trial < 20000; ++trial) {
    auto bytes = base;
    // Flip 1-3 random bytes.
    const int flips = 1 + static_cast<int>(rng.next_below(3));
    for (int f = 0; f < flips; ++f)
      bytes[rng.next_below(bytes.size())] ^=
          static_cast<std::uint8_t>(1 + rng.next_below(255));
    try {
      (void)decode_pdu(bytes);
      ++decoded;
    } catch (const CodecError&) {
    }
  }
  // Most single-byte payload flips still parse (they change field values,
  // not framing); the point is zero crashes either way.
  EXPECT_GT(decoded, 0);
}

TEST(CodecFuzz, DeeplyNestedEnvelopeBounded) {
  // An attacker nesting envelopes could try to blow the stack; our inner
  // PDUs are length-prefixed and decode recursively. Verify a sane depth
  // works and produces matching re-encoding.
  Pdu pdu = make_pdu(Paging{1, 2});
  for (int depth = 0; depth < 64; ++depth) {
    ClusterForward fwd;
    fwd.origin = static_cast<std::uint32_t>(depth);
    fwd.inner = box(std::move(pdu));
    pdu = make_pdu(fwd);
  }
  const auto bytes = encode_pdu(pdu);
  const Pdu back = decode_pdu(bytes);
  EXPECT_EQ(encode_pdu(back), bytes);
}

}  // namespace
}  // namespace scale::proto

// BufferPool / BoxAlloc unit tests — recycling, handle ownership, and the
// kPduReserveBytes upper bound pinned against the real codecs. The suite
// runs under the ASan tier-1 leg, so the recycle paths are also checked for
// use-after-free and double-free.
#include <gtest/gtest.h>

#include "common/check.h"

#include <cstdint>
#include <utility>
#include <variant>
#include <vector>

#include "proto/buffer_pool.h"
#include "proto/codec.h"

namespace scale::proto {
namespace {

TEST(BufferPool, AcquireRecyclesReleasedStorage) {
  BufferPool pool;
  const std::uint8_t* data = nullptr;
  {
    PooledBuffer h = pool.acquire(64);
    h->assign(64, 0xAB);
    data = h->data();
  }  // handle returns storage to the pool
  EXPECT_EQ(pool.idle_count(), 1u);
  PooledBuffer h2 = pool.acquire(64);
  EXPECT_EQ(pool.reuses(), 1u);
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_TRUE(h2->empty());           // recycled buffers come back cleared
  EXPECT_EQ(h2->data(), data);        // ...but with the same storage
  EXPECT_GE(h2->capacity(), 64u);
}

TEST(BufferPool, RecycledBufferKeepsHighWaterCapacity) {
  BufferPool pool;
  {
    PooledBuffer h = pool.acquire(16);
    h->resize(1024);  // grow past the hint
  }
  PooledBuffer h2 = pool.acquire(16);
  EXPECT_GE(h2->capacity(), 1024u);  // steady state never re-reallocates
}

TEST(BufferPool, TakeDetachesBytesFromPool) {
  BufferPool pool;
  std::vector<std::uint8_t> escaped;
  {
    PooledBuffer h = pool.acquire(32);
    h->assign({1, 2, 3});
    escaped = h.take();
  }  // destructor must NOT return the taken buffer
  EXPECT_EQ(pool.idle_count(), 0u);
  EXPECT_EQ(escaped, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST(BufferPool, MoveTransfersOwnershipExactlyOnce) {
  BufferPool pool;
  {
    PooledBuffer a = pool.acquire(32);
    a->assign(8, 0x11);
    PooledBuffer b = std::move(a);       // move-construct
    PooledBuffer c;
    c = std::move(b);                    // move-assign
    EXPECT_EQ(c->size(), 8u);
  }  // only c gives back; a and b were emptied by the moves
  EXPECT_EQ(pool.idle_count(), 1u);
}

TEST(BufferPool, MaxIdleBoundsRetainedStorage) {
  BufferPool pool(/*max_idle=*/2);
  for (int i = 0; i < 5; ++i) {
    std::vector<std::uint8_t> buf;
    buf.reserve(64);
    pool.release(std::move(buf));
  }
  EXPECT_EQ(pool.idle_count(), 2u);  // excess is freed, not hoarded
}

TEST(BufferPool, EmptyBuffersAreNotPooled) {
  BufferPool pool;
  pool.release(std::vector<std::uint8_t>{});  // capacity 0: nothing to keep
  EXPECT_EQ(pool.idle_count(), 0u);
}

TEST(BufferPool, EncodePooledReusesStorageInSteadyState) {
  // encode_pdu_pooled leases from the shared thread-local pool; after a
  // warm-up call, further encodes must be allocation-free (reuse, not miss).
  const Pdu pdu = make_pdu(Paging{1, 2});
  { PooledBuffer warm = encode_pdu_pooled(pdu); }
  const std::uint64_t reuses_before = BufferPool::local().reuses();
  const std::uint64_t misses_before = BufferPool::local().misses();
  { PooledBuffer again = encode_pdu_pooled(pdu); }
  EXPECT_EQ(BufferPool::local().reuses(), reuses_before + 1);
  EXPECT_EQ(BufferPool::local().misses(), misses_before);
}

TEST(BufferPool, ReserveBoundCoversFixedLayoutPdus) {
  // Pin kPduReserveBytes against the real codecs: every fixed-layout
  // top-level PDU (worst-case field values) must encode within the hint, so
  // the pooled encode path never reallocates mid-message. Variable-length
  // PDUs (RingUpdate, nested envelopes) are deliberately exempt.
  UeContextRecord rec;
  rec.imsi = 0xFFFFFFFFFFFFull;
  rec.guti = Guti{0xFFFF, 0xFFFF, 0xFF, 0xFFFFFFFF};
  rec.active = true;
  rec.enb_id = ~0u;
  rec.enb_ue_id = ~0u;
  rec.tac = 0xFFFF;
  rec.kasme = ~0ull;
  rec.access_freq = 123.456;
  rec.version = ~0u;
  rec.master_mmp = ~0u;
  rec.home_dc = ~0u;
  rec.external_dc = 0x7FFFFFFF;
  rec.sgw_node = ~0u;
  rec.state_bytes = ~0u;

  NasAttachRequest attach;
  attach.imsi = 0xFFFFFFFFFFFFull;
  attach.old_guti = rec.guti;
  attach.tac = 0xFFFF;

  ClusterForward fwd;
  fwd.origin = ~0u;
  fwd.guti = rec.guti;
  fwd.no_offload = true;
  fwd.inner = box(make_pdu(InitialUeMessage{~0u, ~0u, 0xFFFF,
                                            NasMessage{attach}}));

  std::vector<Pdu> worst_case;
  worst_case.push_back(make_pdu(InitialUeMessage{~0u, ~0u, 0xFFFF,
                                                 NasMessage{attach}}));
  worst_case.push_back(make_pdu(ReplicaPush{rec, true}));
  worst_case.push_back(make_pdu(StateTransfer{rec}));
  worst_case.push_back(make_pdu(std::move(fwd)));  // boxed standard PDU inside
  std::size_t max_seen = 0;
  for (const Pdu& pdu : worst_case) {
    const std::size_t n = encode_pdu(pdu).size();
    EXPECT_LE(n, kPduReserveBytes) << pdu_name(pdu);
    if (n > max_seen) max_seen = n;
  }
  // The bound should be tight-ish: if the codecs shrink dramatically, the
  // constant deserves revisiting (a slack cap wastes pool memory forever).
  // Today's worst case is a StateTransfer carrying a full UeContextRecord
  // (~83 bytes); the 2x headroom absorbs shallow envelope nesting.
  EXPECT_GE(max_seen, kPduReserveBytes / 3);
}

TEST(BoxAlloc, BoxedPduBlocksAreRecycled) {
  // Box a Pdu, note the block address, drop the ref, box again: the
  // thread-local free list must hand back the same combined block (LIFO).
  // ASan additionally proves the first ref was fully released first.
  PduRef first = box(make_pdu(Paging{1, 2}));
  const void* block = first.get();
  first.reset();
  PduRef second = box(make_pdu(Paging{3, 4}));
  EXPECT_EQ(static_cast<const void*>(second.get()), block);
  ASSERT_TRUE(std::holds_alternative<S1apMessage>(second->value));
}

TEST(BoxAlloc, LiveBoxesGetDistinctBlocks) {
  PduRef a = box(make_pdu(Paging{1, 1}));
  PduRef b = box(make_pdu(Paging{2, 2}));
  EXPECT_NE(a.get(), b.get());
  const auto& pg = std::get<Paging>(std::get<S1apMessage>(a->value));
  EXPECT_EQ(pg.m_tmsi, 1u);
  EXPECT_EQ(pg.tac, 1);
}

}  // namespace
}  // namespace scale::proto

// Fabric delivery edge cases: dead-endpoint drops for in-flight PDUs,
// FaultPlane integration (wire loss vs endpoint loss accounting), and the
// counter-reset regression (fabric + network + fault counters zero as one
// measurement window).
#include <gtest/gtest.h>

#include <memory>

#include <vector>

#include "epc/fabric.h"
#include "proto/s11.h"
#include "sim/engine.h"
#include "sim/network.h"

namespace scale {
namespace {

struct Probe final : epc::Endpoint {
  epc::Fabric& fabric;
  sim::NodeId node;
  std::vector<proto::Imsi> got;
  bool alive = true;

  explicit Probe(epc::Fabric& f) : fabric(f), node(f.add_endpoint(this)) {}
  ~Probe() override {
    if (alive) fabric.remove_endpoint(node);
  }
  void deregister() {
    fabric.remove_endpoint(node);
    alive = false;
  }
  void receive(sim::NodeId, const proto::Pdu& pdu) override {
    ASSERT_TRUE(alive) << "delivery to a deregistered endpoint";
    const auto* s11 = std::get_if<proto::S11Message>(&pdu);
    ASSERT_NE(s11, nullptr);
    const auto* req = std::get_if<proto::CreateSessionRequest>(s11);
    ASSERT_NE(req, nullptr);
    got.push_back(req->imsi);
  }
};

proto::Pdu ping(proto::Imsi imsi) {
  proto::CreateSessionRequest req;
  req.imsi = imsi;
  return proto::make_pdu(req);
}

struct FabricTest : ::testing::Test {
  sim::Engine engine;
  sim::Network net{Duration::us(500), 42};
  epc::Fabric fabric{engine, net};
};

TEST_F(FabricTest, InFlightPduToDeregisteredNodeIsDropped) {
  Probe a(fabric), b(fabric);
  fabric.send(a.node, b.node, ping(1));
  // The PDU is on the wire (delivery at +500us); the destination vanishes
  // before it lands — e.g. an MMP VM de-provisioned mid-flight.
  b.deregister();
  engine.run_until(Time::from_sec(1.0));
  EXPECT_TRUE(b.got.empty());
  EXPECT_EQ(fabric.dropped(), 1u);
}

TEST_F(FabricTest, WireLossIsNotAnEndpointDrop) {
  Probe a(fabric), b(fabric);
  sim::LinkFaults f;
  f.drop_prob = 1.0;
  net.set_global_faults(f);
  for (proto::Imsi i = 1; i <= 5; ++i) fabric.send(a.node, b.node, ping(i));
  engine.run_until(Time::from_sec(1.0));
  EXPECT_TRUE(b.got.empty());
  // Drops happened on the wire: fault counters, not the dead-endpoint one.
  EXPECT_EQ(net.fault_counters().random_drops, 5u);
  EXPECT_EQ(fabric.dropped(), 0u);
  // The messages were still transmitted (and accounted) by the sender.
  EXPECT_EQ(net.messages_sent(), 5u);
}

TEST_F(FabricTest, DuplicateFaultDeliversTwice) {
  Probe a(fabric), b(fabric);
  sim::LinkFaults f;
  f.dup_prob = 1.0;
  net.set_global_faults(f);
  fabric.send(a.node, b.node, ping(9));
  engine.run_until(Time::from_sec(1.0));
  ASSERT_EQ(b.got.size(), 2u);
  EXPECT_EQ(b.got[0], 9u);
  EXPECT_EQ(b.got[1], 9u);
  EXPECT_EQ(net.fault_counters().duplicates, 1u);
}

TEST_F(FabricTest, ReorderFaultDelaysDelivery) {
  Probe a(fabric), b(fabric);
  sim::LinkFaults f;
  f.reorder_prob = 1.0;
  f.reorder_window = Duration::ms(5.0);
  net.set_global_faults(f);
  fabric.send(a.node, b.node, ping(3));
  // Normal latency alone is not enough...
  engine.run_until(Time::zero() + Duration::ms(4.0));
  EXPECT_TRUE(b.got.empty());
  // ...the PDU lands after latency + reorder_window.
  engine.run_until(Time::zero() + Duration::ms(6.0));
  EXPECT_EQ(b.got.size(), 1u);
  EXPECT_EQ(net.fault_counters().reorders, 1u);
}

TEST_F(FabricTest, PartitionWindowSeversThenHeals) {
  Probe a(fabric), b(fabric);
  net.set_node_dc(a.node, 0);
  net.set_node_dc(b.node, 1);
  net.schedule_partition(0, 1, Time::from_sec(1.0), Time::from_sec(3.0));
  engine.after(Duration::sec(2.0),
               [&]() { fabric.send(a.node, b.node, ping(1)); });  // cut
  engine.after(Duration::sec(4.0),
               [&]() { fabric.send(a.node, b.node, ping(2)); });  // healed
  engine.run_until(Time::from_sec(5.0));
  ASSERT_EQ(b.got.size(), 1u);
  EXPECT_EQ(b.got[0], 2u);
  EXPECT_EQ(net.fault_counters().partition_drops, 1u);
}

TEST_F(FabricTest, ResetCountersZeroesEverythingTogether) {
  Probe a(fabric), b(fabric);
  // One dead-endpoint drop...
  auto dead = std::make_unique<Probe>(fabric);
  const sim::NodeId dead_node = dead->node;
  fabric.send(a.node, dead_node, ping(1));
  dead.reset();
  // ...one wire drop + one duplicate...
  sim::LinkFaults f;
  f.drop_prob = 1.0;
  net.set_link_faults(a.node, b.node, f, /*symmetric=*/false);
  fabric.send(a.node, b.node, ping(2));
  sim::LinkFaults d;
  d.dup_prob = 1.0;
  net.set_link_faults(b.node, a.node, d, /*symmetric=*/false);
  fabric.send(b.node, a.node, ping(3));
  engine.run_until(Time::from_sec(1.0));

  ASSERT_EQ(fabric.dropped(), 1u);
  ASSERT_GT(net.messages_sent(), 0u);
  ASSERT_GT(net.bytes_sent(), 0u);
  ASSERT_EQ(net.fault_counters().random_drops, 1u);
  ASSERT_EQ(net.fault_counters().duplicates, 1u);

  fabric.reset_counters();
  EXPECT_EQ(fabric.dropped(), 0u);
  EXPECT_EQ(net.messages_sent(), 0u);
  EXPECT_EQ(net.bytes_sent(), 0u);
  EXPECT_EQ(net.messages_between(a.node, b.node), 0u);
  EXPECT_EQ(net.fault_counters(), sim::FaultCounters{});
}

// --- Batched delivery (DESIGN.md §12) --------------------------------------
// Same-destination, same-timestamp sends ride one engine event; anything
// that could reorder relative (time, seq) pairs — a destination switch or an
// unrelated event scheduled in between — closes the open batch.

TEST_F(FabricTest, SameDestinationSameTickSendsShareOneEvent) {
  Probe a(fabric), b(fabric);
  for (proto::Imsi i = 1; i <= 8; ++i) fabric.send(a.node, b.node, ping(i));
  EXPECT_EQ(fabric.delivery_batches(), 1u);
  EXPECT_EQ(fabric.batched_pdus(), 7u);
  engine.run_until(Time::from_sec(1.0));
  ASSERT_EQ(b.got.size(), 8u);
  for (proto::Imsi i = 1; i <= 8; ++i) EXPECT_EQ(b.got[i - 1], i);
}

TEST_F(FabricTest, DestinationSwitchClosesBatch) {
  Probe a(fabric), b(fabric), c(fabric);
  fabric.send(a.node, b.node, ping(1));
  fabric.send(a.node, c.node, ping(2));
  // Same (to, at) as the first send, but c's event was scheduled in
  // between — appending here would skip a seq, so a fresh event is correct.
  fabric.send(a.node, b.node, ping(3));
  EXPECT_EQ(fabric.delivery_batches(), 3u);
  EXPECT_EQ(fabric.batched_pdus(), 0u);
  engine.run_until(Time::from_sec(1.0));
  ASSERT_EQ(b.got.size(), 2u);
  EXPECT_EQ(b.got[0], 1u);
  EXPECT_EQ(b.got[1], 3u);
  ASSERT_EQ(c.got.size(), 1u);
  EXPECT_EQ(c.got[0], 2u);
}

TEST_F(FabricTest, UnrelatedEventBetweenSendsClosesBatch) {
  Probe a(fabric), b(fabric);
  fabric.send(a.node, b.node, ping(1));
  engine.after(Duration::ms(10.0), [] {});
  fabric.send(a.node, b.node, ping(2));
  EXPECT_EQ(fabric.delivery_batches(), 2u);
  EXPECT_EQ(fabric.batched_pdus(), 0u);
  engine.run_until(Time::from_sec(1.0));
  ASSERT_EQ(b.got.size(), 2u);
  EXPECT_EQ(b.got[0], 1u);
  EXPECT_EQ(b.got[1], 2u);
}

}  // namespace
}  // namespace scale

#include <gtest/gtest.h>

#include "core/replication.h"

namespace scale::core {
namespace {

TEST(ReplicationPolicy, SingleCopyNeverReplicates) {
  ReplicationPolicy p;
  p.local_copies = 1;
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(p.should_replicate(0.9, rng));
}

TEST(ReplicationPolicy, DefaultReplicatesEverything) {
  ReplicationPolicy p;  // R=2, threshold 0, scale huge
  Rng rng(1);
  for (double wi : {0.01, 0.5, 1.0})
    EXPECT_TRUE(p.should_replicate(wi, rng));
}

TEST(ReplicationPolicy, LowAccessDevicesSkipped) {
  ReplicationPolicy p;
  p.low_access_threshold = 0.2;
  Rng rng(1);
  EXPECT_FALSE(p.should_replicate(0.1, rng));
  EXPECT_FALSE(p.should_replicate(0.2, rng));
  EXPECT_TRUE(p.should_replicate(0.21, rng));
}

TEST(ReplicationPolicy, ProbabilityScaleProportionalToWi) {
  ReplicationPolicy p;
  p.probability_scale = 1.0;  // P = wi
  Rng rng(7);
  const int n = 100000;
  int hi = 0, lo = 0;
  for (int i = 0; i < n; ++i) {
    hi += p.should_replicate(0.8, rng) ? 1 : 0;
    lo += p.should_replicate(0.2, rng) ? 1 : 0;
  }
  EXPECT_NEAR(hi / static_cast<double>(n), 0.8, 0.01);
  EXPECT_NEAR(lo / static_cast<double>(n), 0.2, 0.01);
}

TEST(ReplicationPolicy, AccessUnawareUsesUniformProbability) {
  ReplicationPolicy p;
  p.access_aware = false;
  p.uniform_probability = 0.4;
  Rng rng(9);
  const int n = 100000;
  int hi = 0, lo = 0;
  for (int i = 0; i < n; ++i) {
    hi += p.should_replicate(0.9, rng) ? 1 : 0;
    lo += p.should_replicate(0.05, rng) ? 1 : 0;
  }
  // wi must not matter in the unaware baseline.
  EXPECT_NEAR(hi / static_cast<double>(n), 0.4, 0.01);
  EXPECT_NEAR(lo / static_cast<double>(n), 0.4, 0.01);
}

TEST(ReplicationPolicy, ZeroScaleBlocksAll) {
  ReplicationPolicy p;
  p.probability_scale = 0.0;
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(p.should_replicate(1.0, rng));
}

}  // namespace
}  // namespace scale::core

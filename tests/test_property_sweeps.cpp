// Parameterized property sweeps across module boundaries (TEST_P).
#include <gtest/gtest.h>

#include <set>

#include "core/provisioner.h"
#include "hash/ring.h"
#include "proto/codec.h"
#include "workload/population.h"

namespace scale {
namespace {

// ---------------------------------------------------- provisioning invariants

struct ProvisionCase {
  std::uint64_t load;
  std::uint64_t devices;
  double beta;
};

class ProvisionSweep : public ::testing::TestWithParam<ProvisionCase> {};

TEST_P(ProvisionSweep, DecisionInvariants) {
  const auto p = GetParam();
  core::Provisioner::Config cfg;
  cfg.alpha = 1.0;
  cfg.requests_per_vm_epoch = 1000;
  cfg.devices_per_vm = 5000;
  cfg.replicas = 2;
  cfg.max_vms = 1000;
  core::Provisioner prov(cfg);
  prov.set_beta(p.beta);
  const auto d = prov.decide(p.load, p.devices);

  // V = max(V_C, V_S), clamped.
  EXPECT_EQ(d.vms, std::clamp(std::max(d.compute_vms, d.storage_vms),
                              cfg.min_vms, cfg.max_vms));
  // Enough compute for the load estimate.
  EXPECT_GE(static_cast<double>(d.compute_vms) *
                static_cast<double>(cfg.requests_per_vm_epoch),
            d.load_estimate - 1e-9);
  // Enough storage for β·R·K.
  EXPECT_GE(static_cast<double>(d.storage_vms) *
                static_cast<double>(cfg.devices_per_vm),
            p.beta * 2.0 * static_cast<double>(p.devices) -
                static_cast<double>(cfg.devices_per_vm));
  // β only ever shrinks the storage term.
  core::Provisioner full(cfg);
  full.set_beta(1.0);
  EXPECT_LE(d.storage_vms, full.decide(p.load, p.devices).storage_vms);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ProvisionSweep,
    ::testing::Values(ProvisionCase{0, 0, 1.0},
                      ProvisionCase{100, 1000, 1.0},
                      ProvisionCase{50000, 1000, 0.8},
                      ProvisionCase{100, 2'000'000, 0.75},
                      ProvisionCase{750000, 3'000'000, 0.5},
                      ProvisionCase{1, 1, 0.01}));

// ----------------------------------------------------------- ring vs replicas

class RingReplicaSweep
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

// For every (tokens, R): the preference list is stable under unrelated node
// churn — adding and removing an unrelated node restores the exact list.
TEST_P(RingReplicaSweep, PreferenceListStableUnderUnrelatedChurn) {
  const auto [tokens, R] = GetParam();
  hash::ConsistentHashRing ring(
      hash::ConsistentHashRing::Config{tokens, true});
  for (hash::RingNodeId n = 1; n <= 12; ++n) ring.add_node(n);

  std::vector<std::vector<hash::RingNodeId>> before;
  for (std::uint64_t key = 0; key < 200; ++key)
    before.push_back(ring.preference_list(key, R));

  ring.add_node(777);
  ring.remove_node(777);

  for (std::uint64_t key = 0; key < 200; ++key)
    EXPECT_EQ(ring.preference_list(key, R), before[key]) << "key " << key;
}

INSTANTIATE_TEST_SUITE_P(
    TokensAndR, RingReplicaSweep,
    ::testing::Combine(::testing::Values(1u, 5u, 16u),
                       ::testing::Values(1u, 2u, 4u)));

// ------------------------------------------------------------ codec roundtrip

class NasRoundTripSweep : public ::testing::TestWithParam<std::uint64_t> {};

// Randomized field fuzz: any NasAttachRequest round-trips bit-exactly.
TEST_P(NasRoundTripSweep, AttachRequestFieldFuzz) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    proto::NasAttachRequest req;
    req.imsi = rng.next_u64();
    if (rng.chance(0.5)) {
      proto::Guti g;
      g.plmn = static_cast<std::uint16_t>(rng.next_below(1 << 16));
      g.mme_group = static_cast<std::uint16_t>(rng.next_below(1 << 16));
      g.mme_code = static_cast<std::uint8_t>(rng.next_below(256));
      g.m_tmsi = static_cast<std::uint32_t>(rng.next_u64());
      req.old_guti = g;
    }
    req.tac = static_cast<std::uint16_t>(rng.next_below(1 << 16));

    proto::ByteWriter w;
    proto::encode_nas(proto::NasMessage{req}, w);
    proto::ByteReader r(w.data());
    const auto back = proto::decode_nas(r);
    ASSERT_TRUE(std::holds_alternative<proto::NasAttachRequest>(back));
    EXPECT_EQ(std::get<proto::NasAttachRequest>(back), req);
    EXPECT_TRUE(r.at_end());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NasRoundTripSweep,
                         ::testing::Values(1u, 77u, 4242u));

// -------------------------------------------------------- population shaping

class BimodalSweep : public ::testing::TestWithParam<double> {};

TEST_P(BimodalSweep, FractionsAreExact) {
  const double frac = GetParam();
  const auto w = workload::bimodal_access(1000, frac, 0.1, 0.9);
  const auto low = static_cast<std::size_t>(
      std::count(w.begin(), w.end(), 0.1));
  EXPECT_EQ(low, static_cast<std::size_t>(frac * 1000.0));
  EXPECT_EQ(w.size(), 1000u);
}

INSTANTIATE_TEST_SUITE_P(Fractions, BimodalSweep,
                         ::testing::Values(0.0, 0.125, 0.25, 0.5, 0.75,
                                           1.0));

}  // namespace
}  // namespace scale

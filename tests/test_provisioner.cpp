#include <gtest/gtest.h>

#include "common/check.h"

#include "core/provisioner.h"

namespace scale::core {
namespace {

Provisioner::Config base_cfg() {
  Provisioner::Config cfg;
  cfg.alpha = 0.5;
  cfg.requests_per_vm_epoch = 1000;  // N
  cfg.devices_per_vm = 10000;        // S
  cfg.replicas = 2;                  // R
  cfg.min_vms = 1;
  cfg.max_vms = 100;
  return cfg;
}

TEST(Provisioner, ComputeBoundDominatesUnderLoad) {
  Provisioner p(base_cfg());
  // 5000 requests, 1000 devices: V_C = 5, V_S = ceil(2*1000/10000) = 1.
  const auto d = p.decide(5000, 1000);
  EXPECT_EQ(d.compute_vms, 5u);
  EXPECT_EQ(d.storage_vms, 1u);
  EXPECT_EQ(d.vms, 5u);
}

TEST(Provisioner, StorageBoundDominatesWithManyDevices) {
  Provisioner p(base_cfg());
  // 100 requests but 200k registered devices: V_S = ceil(2*200k/10k) = 40.
  const auto d = p.decide(100, 200000);
  EXPECT_EQ(d.storage_vms, 40u);
  EXPECT_EQ(d.vms, 40u);
}

TEST(Provisioner, EwmaSmoothsLoadEstimate) {
  Provisioner p(base_cfg());
  p.decide(1000, 0);  // primes L̄ = 1000
  const auto d = p.decide(3000, 0);
  // L̄ = 0.5*3000 + 0.5*1000 = 2000 → V_C = 2.
  EXPECT_DOUBLE_EQ(d.load_estimate, 2000.0);
  EXPECT_EQ(d.compute_vms, 2u);
}

TEST(Provisioner, BetaScalesStorageTerm) {
  Provisioner p(base_cfg());
  p.set_beta(0.75);
  const auto d = p.decide(0, 200000);
  // ceil(0.75 * 2 * 200k / 10k) = 30 instead of 40 — the Fig. 11(a) saving.
  EXPECT_EQ(d.storage_vms, 30u);
  EXPECT_DOUBLE_EQ(d.beta, 0.75);
}

TEST(Provisioner, ClampsToMinMax) {
  auto cfg = base_cfg();
  cfg.min_vms = 3;
  cfg.max_vms = 10;
  Provisioner p(cfg);
  EXPECT_EQ(p.decide(0, 0).vms, 3u);
  EXPECT_EQ(p.decide(1000000, 0).vms, 10u);
}

TEST(Provisioner, BetaForMatchesEq2) {
  // β(x) = 1 − (K̂(x) − Sn − Sm)/(R·K)
  const double beta = Provisioner::beta_for(/*k_hat=*/50000, /*s_new=*/5000,
                                            /*s_ext=*/5000, /*R=*/2,
                                            /*K=*/100000);
  EXPECT_DOUBLE_EQ(beta, 1.0 - 40000.0 / 200000.0);
}

TEST(Provisioner, BetaForNoReclaimableMemoryIsOne) {
  EXPECT_DOUBLE_EQ(Provisioner::beta_for(1000, 2000, 2000, 2, 100000), 1.0);
  EXPECT_DOUBLE_EQ(Provisioner::beta_for(0, 0, 0, 2, 100000), 1.0);
  EXPECT_DOUBLE_EQ(Provisioner::beta_for(0, 0, 0, 2, 0), 1.0);
}

TEST(Provisioner, BetaDecreasesWithMoreLowAccessDevices) {
  // Fig. 11(a): as the low-probability population grows, β shrinks and so
  // does the VM count.
  double prev_beta = 1.0;
  std::uint32_t prev_vms = UINT32_MAX;
  for (std::uint64_t k_hat : {10000u, 30000u, 50000u, 70000u}) {
    const double beta =
        Provisioner::beta_for(k_hat, 5000, 0, 2, 100000);
    EXPECT_LE(beta, prev_beta);
    prev_beta = beta;
    Provisioner p(base_cfg());
    p.set_beta(beta);
    const auto d = p.decide(0, 100000);
    EXPECT_LE(d.vms, prev_vms);
    prev_vms = d.vms;
  }
}

TEST(Provisioner, InvalidBetaRejected) {
  Provisioner p(base_cfg());
  EXPECT_THROW(p.set_beta(0.0), scale::CheckError);
  EXPECT_THROW(p.set_beta(1.5), scale::CheckError);
}

}  // namespace
}  // namespace scale::core

#include <gtest/gtest.h>

#include "common/check.h"

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace scale {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NextBelowOneIsAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(11);
  const double rate = 4.0;
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.01);
}

TEST(Rng, PoissonMeanSmall) {
  Rng rng(13);
  const double mean = 3.5;
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(mean));
  EXPECT_NEAR(sum / n, mean, 0.05);
}

TEST(Rng, PoissonMeanLargeUsesNormalApprox) {
  Rng rng(13);
  const double mean = 500.0;
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(mean));
  EXPECT_NEAR(sum / n, mean, 2.0);
}

TEST(Rng, NormalMoments) {
  Rng rng(17);
  const int n = 200000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, ZipfRanksWithinRange) {
  Rng rng(19);
  for (int i = 0; i < 20000; ++i) {
    const auto r = rng.zipf(100, 1.1);
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, 100u);
  }
}

TEST(Rng, ZipfRankOneMostFrequent) {
  Rng rng(23);
  std::vector<int> counts(11, 0);
  for (int i = 0; i < 50000; ++i) counts[rng.zipf(10, 1.2)]++;
  for (int r = 2; r <= 10; ++r) EXPECT_GT(counts[1], counts[r]);
}

TEST(Rng, ChanceEdgeCases) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, ChanceFrequencyMatches) {
  Rng rng(31);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, WeightedIndexDistribution) {
  Rng rng(37);
  const std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[rng.weighted_index(weights)]++;
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(Rng, WeightedIndexRejectsAllZero) {
  Rng rng(41);
  EXPECT_THROW(rng.weighted_index({0.0, 0.0}), CheckError);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(43);
  Rng child = parent.fork();
  // Child stream differs from the parent's continued stream.
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (parent.next_u64() == child.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(47);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(Rng, ParetoAboveScale) {
  Rng rng(53);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

}  // namespace
}  // namespace scale

// Chaos suite: attach/service-request workloads driven through the
// FaultPlane with the reliability shim enabled. The properties under test
// are the ISSUE's acceptance criteria: no permanent device failures under
// loss or a short partition, bounded retransmission overhead, same-seed
// replayability, and overload shedding that redirects instead of failing.
#include <gtest/gtest.h>

#include <cstdint>

#include "core/cluster.h"
#include "testbed/crash_world.h"

namespace scale {
namespace {

using testbed::CrashWorld;

CrashWorld::Options chaos_options() {
  CrashWorld::Options o;
  o.tb.transport.reliable = true;
  // Chaos adds whole RTO ladders (up to ~4s) to a procedure; give the UE
  // guard room so a retransmitted exchange is slow, not failed.
  o.tb.ue_guard_timeout = Duration::sec(10.0);
  return o;
}

std::uint64_t total_retransmits(CrashWorld& w) {
  std::uint64_t total = 0;
  for (const auto& enb : w.site->enbs) total += enb->transport().retransmits();
  total += w.site->sgw->transport().retransmits();
  total += w.tb.hss().transport().retransmits();
  for (const auto& mlb : w.cluster->mlbs())
    total += mlb->transport().retransmits();
  for (const auto& mmp : w.cluster->mmps())
    total += mmp->transport().retransmits();
  return total;
}

std::uint64_t total_abandoned(CrashWorld& w) {
  std::uint64_t total = 0;
  for (const auto& enb : w.site->enbs) total += enb->transport().abandoned();
  total += w.site->sgw->transport().abandoned();
  total += w.tb.hss().transport().abandoned();
  for (const auto& mlb : w.cluster->mlbs())
    total += mlb->transport().abandoned();
  for (const auto& mmp : w.cluster->mmps())
    total += mmp->transport().abandoned();
  return total;
}

std::size_t registered_count(CrashWorld& w) {
  std::size_t n = 0;
  for (const auto& ue : w.site->ues)
    if (ue->registered()) ++n;
  return n;
}

/// Shared workload: 40 devices attach, then three idle->active cycles.
void run_workload(CrashWorld& w) {
  w.tb.make_ues(*w.site, 40, {0.9, 0.3});
  w.tb.register_all(*w.site, Duration::sec(4.0), Duration::sec(10.0));
  for (int round = 0; round < 3; ++round) {
    for (auto& ue : w.site->ues)
      if (ue->registered() && !ue->connected() && !ue->busy())
        ue->service_request();
    // Serve + fall idle again (MmeApp inactivity timeout is 5s).
    w.tb.run_for(Duration::sec(8.0));
  }
  w.tb.run_for(Duration::sec(10.0));  // settle: reattach stragglers
}

struct RunFingerprint {
  std::uint64_t messages = 0;
  std::uint64_t bytes = 0;
  sim::FaultCounters faults;
  std::uint64_t retransmits = 0;
  std::uint64_t ue_failures = 0;
  std::size_t registered = 0;

  bool operator==(const RunFingerprint&) const = default;
};

RunFingerprint lossy_run(double drop_prob, std::uint64_t seed) {
  CrashWorld::Options o = chaos_options();
  o.tb.seed = seed;
  CrashWorld w(o);
  sim::LinkFaults f;
  f.drop_prob = drop_prob;
  f.dup_prob = drop_prob / 5.0;
  f.reorder_prob = drop_prob / 5.0;
  w.tb.network().set_global_faults(f);
  run_workload(w);
  return RunFingerprint{w.tb.network().messages_sent(),
                        w.tb.network().bytes_sent(),
                        w.tb.network().fault_counters(),
                        total_retransmits(w),
                        w.tb.failures(),
                        registered_count(w)};
}

TEST(Chaos, FivePercentLossNoPermanentFailures) {
  // Baseline: same workload, clean wire, shim enabled.
  CrashWorld clean(chaos_options());
  run_workload(clean);
  const std::uint64_t baseline_messages = clean.tb.network().messages_sent();
  ASSERT_EQ(registered_count(clean), clean.site->ues.size());
  ASSERT_EQ(total_retransmits(clean), 0u) << "clean wire must not retransmit";

  CrashWorld w(chaos_options());
  sim::LinkFaults f;
  f.drop_prob = 0.05;
  f.dup_prob = 0.01;
  f.reorder_prob = 0.01;
  w.tb.network().set_global_faults(f);
  run_workload(w);

  EXPECT_GT(w.tb.network().fault_counters().random_drops, 0u);
  // Zero permanent device failures: every device is registered at the end.
  EXPECT_EQ(registered_count(w), w.site->ues.size());
  // The shim worked, and within the overhead budget.
  EXPECT_GT(total_retransmits(w), 0u);
  EXPECT_LT(total_retransmits(w), 3 * baseline_messages);
  EXPECT_EQ(total_abandoned(w), 0u);
}

TEST(Chaos, SameSeedRunsAreByteIdentical) {
  const RunFingerprint a = lossy_run(0.05, 17);
  const RunFingerprint b = lossy_run(0.05, 17);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.faults.random_drops, 0u);

  // And a different seed genuinely perturbs the run (the equality above is
  // not vacuous).
  const RunFingerprint c = lossy_run(0.05, 18);
  EXPECT_NE(a.bytes, c.bytes);
}

TEST(Chaos, TwoSecondPartitionHealsWithoutLosingDevices) {
  CrashWorld::Options o = chaos_options();
  o.cluster_dc = 1;  // whole control plane across the partition from radio
  CrashWorld w(o);
  w.tb.make_ues(*w.site, 30, {0.9});
  w.tb.register_all(*w.site, Duration::sec(3.0), Duration::sec(10.0));
  ASSERT_EQ(registered_count(w), w.site->ues.size());

  const Time t0 = w.tb.engine().now();
  w.tb.network().schedule_partition(0, 1, t0 + Duration::ms(500.0),
                                    t0 + Duration::ms(2500.0));
  // Fire service requests into the outage: they must survive via
  // retransmission, not fail.
  std::size_t issued = 0;
  w.tb.engine().after(Duration::ms(600.0), [&w, &issued]() {
    for (auto& ue : w.site->ues)
      if (ue->registered() && !ue->connected() && !ue->busy() &&
          ue->service_request())
        ++issued;
  });
  w.tb.run_for(Duration::sec(30.0));

  ASSERT_GT(issued, 0u);
  EXPECT_GT(w.tb.network().fault_counters().partition_drops, 0u);
  EXPECT_GT(total_retransmits(w), 0u);
  EXPECT_EQ(w.tb.failures(), 0u)
      << "a 2s partition is inside the retransmission budget";
  EXPECT_EQ(registered_count(w), w.site->ues.size());
  std::size_t served = 0;
  for (const auto& ue : w.site->ues)
    if (ue->completed(proto::ProcedureType::kServiceRequest) > 0) ++served;
  EXPECT_GE(served, issued);
}

TEST(Chaos, SaturatingBurstShedsAndRecovers) {
  CrashWorld::Options o;  // clean wire: shedding is not a fault response
  o.mmps = 3;
  o.cluster.mmp_shed_backlog = Duration::ms(5.0);
  o.cluster.vm_template.cpu_speed = 0.25;  // easier to saturate
  o.tb.ue_guard_timeout = Duration::sec(10.0);
  CrashWorld w(o);

  // 150 devices attach within 10ms: far beyond what 3 quarter-speed VMs
  // absorb without queueing past the shed threshold.
  w.tb.make_ues(*w.site, 150, {0.9, 0.5});
  w.tb.register_all(*w.site, Duration::ms(10.0), Duration::sec(30.0));

  std::uint64_t sheds = 0;
  for (const auto& mmp : w.cluster->mmps()) sheds += mmp->overload_sheds();
  std::uint64_t rejects = 0, resteers = 0;
  for (const auto& mlb : w.cluster->mlbs()) {
    rejects += mlb->overload_rejects();
    resteers += mlb->overload_resteers();
  }
  EXPECT_GT(sheds, 0u) << "burst must trip the shed threshold";
  EXPECT_EQ(rejects, sheds) << "every shed reject reaches the MLB";
  EXPECT_EQ(resteers, rejects)
      << "the MLB re-steers every rejected request to a replica";
  // Shedding redirects; it must not turn the burst into permanent failures.
  EXPECT_EQ(registered_count(w), w.site->ues.size());
}

TEST(Chaos, ShedDisabledKeepsSeedBehaviour) {
  CrashWorld::Options o;
  o.mmps = 3;
  o.cluster.vm_template.cpu_speed = 0.25;
  o.tb.ue_guard_timeout = Duration::sec(10.0);
  CrashWorld w(o);  // mmp_shed_backlog stays zero() = disabled
  w.tb.make_ues(*w.site, 150, {0.9, 0.5});
  w.tb.register_all(*w.site, Duration::ms(10.0), Duration::sec(30.0));
  std::uint64_t sheds = 0;
  for (const auto& mmp : w.cluster->mmps()) sheds += mmp->overload_sheds();
  EXPECT_EQ(sheds, 0u);
  EXPECT_EQ(registered_count(w), w.site->ues.size());
}

}  // namespace
}  // namespace scale

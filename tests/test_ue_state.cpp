// UE state-machine edge cases: illegal triggers, guard timeouts, redirect
// handling, camping behaviour.
#include <gtest/gtest.h>

#include "mme/pool.h"
#include "testbed/testbed.h"

namespace scale {
namespace {

using testbed::Testbed;

struct World {
  Testbed tb;
  Testbed::Site* site;
  std::unique_ptr<mme::MmePool> pool;

  explicit World(Testbed::Config tcfg = {}) : tb(tcfg) {
    site = &tb.add_site(2);
    mme::MmePool::Config cfg;
    cfg.node_template.sgw = site->sgw->node();
    cfg.node_template.hss = tb.hss().node();
    cfg.initial_count = 1;
    pool = std::make_unique<mme::MmePool>(tb.fabric(), cfg);
    for (auto& enb : site->enbs) pool->connect_enb(*enb);
  }
};

TEST(UeState, IllegalTriggersAreRefused) {
  World w;
  epc::Ue& ue = w.tb.make_ue(*w.site, 0, 0.5);
  // Not registered yet: everything except attach refuses.
  EXPECT_FALSE(ue.service_request());
  EXPECT_FALSE(ue.tracking_area_update());
  EXPECT_FALSE(ue.detach());
  EXPECT_FALSE(ue.handover(w.site->enb(1)));

  EXPECT_TRUE(ue.attach());
  // Busy: a second trigger while the attach is pending refuses.
  EXPECT_FALSE(ue.attach());
  EXPECT_TRUE(ue.busy());
  w.tb.run_for(Duration::sec(2.0));
  ASSERT_TRUE(ue.connected());

  // Connected: SR and TAU need Idle; handover needs a *different* cell.
  EXPECT_FALSE(ue.service_request());
  EXPECT_FALSE(ue.tracking_area_update());
  EXPECT_FALSE(ue.handover(*ue.serving_enb()));
}

TEST(UeState, GuardTimeoutReportsFailure) {
  Testbed::Config tcfg;
  tcfg.ue_guard_timeout = Duration::sec(3.0);
  tcfg.auto_reattach = false;
  World w(tcfg);
  // Point the eNodeB at a black hole: add a bogus MME that will never
  // answer (an unregistered fabric node).
  epc::Ue& ue = w.tb.make_ue(*w.site, 0, 0.5);
  w.site->enb(0).remove_mme(w.pool->mme(0).node());
  w.site->enb(0).add_mme(/*node=*/9999, /*code=*/77, 1.0);

  EXPECT_TRUE(ue.attach());
  w.tb.run_for(Duration::sec(5.0));
  EXPECT_FALSE(ue.registered());
  EXPECT_FALSE(ue.busy());  // guard cleared the pending procedure
  EXPECT_EQ(ue.failures(), 1u);
  EXPECT_GE(w.tb.fabric().dropped(), 1u);
}

TEST(UeState, CompletionCountsPerProcedure) {
  World w;
  epc::Ue& ue = w.tb.make_ue(*w.site, 0, 0.5);
  ue.attach();
  w.tb.run_for(Duration::sec(8.0));
  ue.service_request();
  w.tb.run_for(Duration::sec(8.0));
  ue.tracking_area_update();
  w.tb.run_for(Duration::sec(2.0));
  EXPECT_EQ(ue.completed(proto::ProcedureType::kAttach), 1u);
  EXPECT_EQ(ue.completed(proto::ProcedureType::kServiceRequest), 1u);
  EXPECT_EQ(ue.completed(proto::ProcedureType::kTrackingAreaUpdate), 1u);
  EXPECT_EQ(ue.completed(proto::ProcedureType::kDetach), 0u);
}

TEST(UeState, DetachWhileConnectedUsesUplinkPath) {
  World w;
  epc::Ue& ue = w.tb.make_ue(*w.site, 0, 0.5);
  ue.attach();
  w.tb.run_for(Duration::sec(2.0));
  ASSERT_TRUE(ue.connected());
  EXPECT_TRUE(ue.detach());  // while Active: NAS over the existing S1 conn
  w.tb.run_for(Duration::sec(2.0));
  EXPECT_FALSE(ue.registered());
  EXPECT_EQ(w.site->sgw->session_count(), 0u);
}

TEST(UeState, PagingIgnoredWhileConnectedOrBusy) {
  World w;
  epc::Ue& ue = w.tb.make_ue(*w.site, 0, 0.5);
  ue.attach();
  w.tb.run_for(Duration::sec(2.0));
  ASSERT_TRUE(ue.connected());
  ue.on_paging();  // no-op: already Active
  EXPECT_FALSE(ue.busy());
}

TEST(UeState, ReattachKeepsIdentityAndSession) {
  World w;
  epc::Ue& ue = w.tb.make_ue(*w.site, 0, 0.5);
  ue.attach();
  w.tb.run_for(Duration::sec(8.0));
  ASSERT_TRUE(ue.registered());
  const proto::Guti first = *ue.guti();

  // Re-attach (e.g. after airplane mode) with the old GUTI: the MME finds
  // the retained context and skips the HSS round trip.
  const std::uint64_t auths_before = w.tb.hss().auth_requests_served();
  EXPECT_TRUE(ue.attach());
  w.tb.run_for(Duration::sec(2.0));
  EXPECT_TRUE(ue.connected());
  EXPECT_EQ(*ue.guti(), first);
  EXPECT_EQ(w.tb.hss().auth_requests_served(), auths_before)
      << "re-attach with intact security context must skip EPS-AKA";
}

TEST(UeState, HandoverChainAcrossCells) {
  World w;
  epc::Ue& ue = w.tb.make_ue(*w.site, 0, 0.5);
  ue.attach();
  w.tb.run_for(Duration::sec(2.0));
  ASSERT_TRUE(ue.connected());
  for (int hop = 0; hop < 4; ++hop) {
    epc::EnodeB& target = w.site->enb(hop % 2 == 0 ? 1 : 0);
    ASSERT_TRUE(ue.handover(target));
    w.tb.run_for(Duration::sec(1.0));
    ASSERT_TRUE(ue.connected());
    EXPECT_EQ(ue.serving_enb(), &target);
  }
  EXPECT_EQ(ue.completed(proto::ProcedureType::kHandover), 4u);
  // The MME tracked the final cell.
  auto* ctx = w.pool->mme(0).app().store().find(ue.guti()->key());
  ASSERT_NE(ctx, nullptr);
  EXPECT_EQ(ctx->rec.enb_id, ue.serving_enb()->node());
}

TEST(UeState, CampedOnlyWhileIdleRegistered) {
  World w;
  epc::Ue& ue = w.tb.make_ue(*w.site, 0, 0.5);
  ue.attach();
  w.tb.run_for(Duration::sec(8.0));  // registered + idle -> camped
  ASSERT_FALSE(ue.connected());

  const proto::Teid teid = w.site->sgw->teid_for(ue.imsi());
  EXPECT_TRUE(w.site->sgw->inject_downlink_data(teid));
  w.tb.run_for(Duration::sec(2.0));
  EXPECT_TRUE(ue.connected()) << "paging must reach a camped idle UE";

  // While Active, paging does not reach it (it is decamped).
  const auto hits_before = w.site->enb(0).paging_hits();
  EXPECT_TRUE(w.site->sgw->inject_downlink_data(teid));
  w.tb.run_for(Duration::sec(1.0));
  EXPECT_EQ(w.site->enb(0).paging_hits(), hits_before);
}

}  // namespace
}  // namespace scale

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "analysis/access_model.h"
#include "analysis/replication_model.h"

namespace scale::analysis {
namespace {

ReplicationModel::Params base_params() {
  ReplicationModel::Params p;
  p.lambda = 0.8;
  p.epoch_T = 60.0;
  p.capacity_N = 50;
  p.cost_C = 1.0;
  return p;
}

TEST(ReplicationModel, ZeroAccessZeroCost) {
  ReplicationModel m(base_params());
  EXPECT_DOUBLE_EQ(m.expected_cost(0.0, 1), 0.0);
}

TEST(ReplicationModel, CostIncreasesWithArrivalRate) {
  // Fig. 6(a) x-axis behaviour: more offered load, more cost.
  double prev = 0.0;
  for (double lambda : {0.5, 0.7, 0.85, 0.95, 1.0}) {
    auto p = base_params();
    p.lambda = lambda;
    ReplicationModel m(p);
    const double cost = m.expected_cost(0.6, 1);
    EXPECT_GE(cost, prev) << "lambda " << lambda;
    prev = cost;
  }
  EXPECT_GT(prev, 0.0);
}

TEST(ReplicationModel, ReplicationReducesCost) {
  ReplicationModel m(base_params());
  const double c1 = m.expected_cost(0.6, 1);
  const double c2 = m.expected_cost(0.6, 2);
  const double c3 = m.expected_cost(0.6, 3);
  EXPECT_GT(c1, c2);
  EXPECT_GE(c2, c3);
}

TEST(ReplicationModel, SecondReplicaGivesMostOfTheBenefit) {
  // The Fig. 6(a) headline: R=1→2 is a big drop; 2→3 is marginal.
  ReplicationModel m(base_params());
  const double c1 = m.expected_cost(0.7, 1);
  const double c2 = m.expected_cost(0.7, 2);
  const double c3 = m.expected_cost(0.7, 3);
  ASSERT_GT(c1, 0.0);
  const double gain12 = c1 - c2;
  const double gain23 = c2 - c3;
  EXPECT_GT(gain12, 5.0 * gain23);
}

TEST(ReplicationModel, ProductFormMatchesLogGamma) {
  // Eq. 9 is an algebraic identity for Eq. 8's gamma ratio; both
  // implementations must agree.
  auto p = base_params();
  p.capacity_N = 20;  // keep the O(k·R) product cheap
  ReplicationModel m(p);
  for (unsigned R : {1u, 2u, 3u}) {
    for (double wi : {0.3, 0.6, 0.9}) {
      const double a = m.expected_cost(wi, R);
      const double b = m.expected_cost_product_form(wi, R);
      EXPECT_NEAR(a, b, 1e-9 + 1e-6 * std::abs(a))
          << "R=" << R << " wi=" << wi;
    }
  }
}

TEST(ReplicationModel, AverageCostIsAccessWeighted) {
  ReplicationModel m(base_params());
  const std::vector<double> wis = {0.2, 0.8};
  const double avg = m.average_cost(wis, 1);
  const double manual = (0.2 * m.expected_cost(0.2, 1) +
                         0.8 * m.expected_cost(0.8, 1)) /
                        1.0;
  EXPECT_NEAR(avg, manual, 1e-12);
}

TEST(ReplicationModel, HigherCapacityLowersCost) {
  auto lo = base_params();
  auto hi = base_params();
  hi.capacity_N = 60;
  EXPECT_GT(ReplicationModel(lo).expected_cost(0.6, 1),
            ReplicationModel(hi).expected_cost(0.6, 1));
}

class ReplicationSweep
    : public ::testing::TestWithParam<std::tuple<double, unsigned>> {};

// Property sweep: cost is nonnegative and finite across the parameter
// space (wi enters both as demand and as the no-show probability, so cost
// is not necessarily monotone in wi — only well-defined).
TEST_P(ReplicationSweep, CostWellBehaved) {
  const auto [lambda, R] = GetParam();
  auto p = base_params();
  p.lambda = lambda;
  ReplicationModel m(p);
  for (double wi = 0.1; wi <= 1.0; wi += 0.1) {
    const double c = m.expected_cost(wi, R);
    EXPECT_TRUE(std::isfinite(c));
    EXPECT_GE(c, 0.0);
    // More replicas never hurt at equal wi.
    EXPECT_LE(m.expected_cost(wi, R + 1), c + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    LambdaAndR, ReplicationSweep,
    ::testing::Combine(::testing::Values(0.5, 0.8, 0.95),
                       ::testing::Values(1u, 2u, 3u)));

// ------------------------------------------------------------ AccessAwareModel

AccessAwareModel::Params constrained_params() {
  AccessAwareModel::Params p;
  p.base = base_params();
  p.base.lambda = 0.9;
  p.vms_V = 10;
  p.usable_capacity_S = 150.0;  // V·S' = 1500 < R·K = 2000
  p.devices_K = 1000;
  p.target_replicas_R = 2;
  return p;
}

TEST(AccessAwareModel, BaseReplicasAndLeftover) {
  AccessAwareModel m(constrained_params());
  EXPECT_EQ(m.base_replicas(), 1u);  // floor(1500/1000)
  EXPECT_NEAR(m.leftover_fraction(), 0.5, 1e-12);
  EXPECT_NEAR(m.p_extra_uniform(), 0.5, 1e-12);
}

TEST(AccessAwareModel, UnconstrainedMeansFullReplication) {
  auto p = constrained_params();
  p.usable_capacity_S = 1000.0;  // V·S' = 10000 >= R·K
  AccessAwareModel m(p);
  EXPECT_EQ(m.base_replicas(), 2u);
  EXPECT_DOUBLE_EQ(m.leftover_fraction(), 0.0);
}

TEST(AccessAwareModel, Eq12ProportionalAndCapped) {
  AccessAwareModel m(constrained_params());
  const double sum_w = 100.0;
  const double p_small = m.p_extra_access_aware(0.01, sum_w);
  const double p_big = m.p_extra_access_aware(0.5, sum_w);
  EXPECT_LT(p_small, p_big);
  // 0.5/100 * 500 extra states = 2.5 → capped at 1.
  EXPECT_DOUBLE_EQ(p_big, 1.0);
}

TEST(AccessAwareModel, AccessAwareBeatsRandomUnderMemoryPressure) {
  // Fig. 6(b): proportional replication yields lower population cost than
  // uniform random selection with identical memory.
  AccessAwareModel m(constrained_params());
  std::vector<double> wis;
  for (std::size_t i = 0; i < 200; ++i)
    wis.push_back(i < 150 ? 0.05 : 0.9);  // mostly dormant + hot minority
  const double aware = m.average_cost(wis, /*access_aware=*/true);
  const double random = m.average_cost(wis, /*access_aware=*/false);
  EXPECT_LT(aware, random);
  EXPECT_GT(random, 1.2 * aware);  // materially better, not noise
}

TEST(AccessAwareModel, Eq13MixesTwoLevels) {
  AccessAwareModel m(constrained_params());
  const double c0 = m.device_cost(0.6, 0.0);
  const double c1 = m.device_cost(0.6, 1.0);
  const double mid = m.device_cost(0.6, 0.5);
  EXPECT_GT(c0, c1);  // extra replica helps
  EXPECT_NEAR(mid, 0.5 * (c0 + c1), 1e-12);
}

}  // namespace
}  // namespace scale::analysis

// QueueModel (analysis/queue_model.h) against textbook closed forms:
// Erlang-B/C fixed points, the M/M/1 and M/D/1 specializations, and the
// structural orderings (deterministic service halves the wait, sharing
// beats splitting) that fig12_mmk's gates lean on.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "analysis/queue_model.h"
#include "common/check.h"

namespace scale::analysis {
namespace {

TEST(QueueModel, ErlangBKnownValues) {
  // B(1, a) = a / (1 + a).
  EXPECT_NEAR(QueueModel::erlang_b(1, 1.0), 0.5, 1e-12);
  EXPECT_NEAR(QueueModel::erlang_b(1, 3.0), 0.75, 1e-12);
  // B(2, 1) = (1/2) / (1 + 1 + 1/2) = 0.2.
  EXPECT_NEAR(QueueModel::erlang_b(2, 1.0), 0.2, 1e-12);
  // Zero offered load never blocks; blocking shrinks with more servers.
  EXPECT_DOUBLE_EQ(QueueModel::erlang_b(4, 0.0), 0.0);
  EXPECT_LT(QueueModel::erlang_b(8, 4.0), QueueModel::erlang_b(4, 4.0));
}

TEST(QueueModel, ErlangCKnownValues) {
  // C(1, a) = a (an M/M/1 arrival waits with probability rho).
  EXPECT_NEAR(QueueModel::erlang_c(1, 0.7), 0.7, 1e-12);
  // C(2, 1) = 2 * 0.2 / (2 - 1 * 0.8) = 1/3.
  EXPECT_NEAR(QueueModel::erlang_c(2, 1.0), 1.0 / 3.0, 1e-12);
  // Saturated: every arrival waits.
  EXPECT_DOUBLE_EQ(QueueModel::erlang_c(2, 2.0), 1.0);
  EXPECT_DOUBLE_EQ(QueueModel::erlang_c(2, 5.0), 1.0);
}

TEST(QueueModel, Mm1SpecialCase) {
  // k = 1 reduces to W_q(M/M/1) = rho / (mu - lambda).
  const double lambda = 70.0, mu = 100.0;
  const double rho = lambda / mu;
  EXPECT_NEAR(QueueModel::mmk_wq(1, lambda, mu), rho / (mu - lambda), 1e-12);
}

TEST(QueueModel, Md1IsHalfOfMm1) {
  const double lambda = 70.0, mu = 100.0;
  EXPECT_NEAR(QueueModel::md1_wq(lambda, mu),
              0.5 * QueueModel::mmk_wq(1, lambda, mu), 1e-12);
  // Cosmetatos' M/D/k form is exact at k = 1.
  EXPECT_NEAR(QueueModel::mdk_wq(1, lambda, mu),
              QueueModel::md1_wq(lambda, mu), 1e-12);
}

TEST(QueueModel, SaturationIsInfinite) {
  EXPECT_TRUE(std::isinf(QueueModel::mmk_wq(2, 200.0, 100.0)));
  EXPECT_TRUE(std::isinf(QueueModel::mmk_wq(2, 250.0, 100.0)));
  EXPECT_TRUE(std::isinf(QueueModel::md1_wq(100.0, 100.0)));
  EXPECT_TRUE(std::isinf(QueueModel::mdk_wq(4, 400.0, 100.0)));
}

TEST(QueueModel, StructuralOrderings) {
  const unsigned k = 6;
  const double mu = 1000.0;
  for (double rho : {0.3, 0.55, 0.8, 0.95}) {
    const double lambda = rho * k * mu;
    const double mmk = QueueModel::mmk_wq(k, lambda, mu);
    const double mdk = QueueModel::mdk_wq(k, lambda, mu);
    const double md1_split = QueueModel::md1_wq(lambda / k, mu);
    // Deterministic service waits less than exponential...
    EXPECT_LT(mdk, mmk) << "rho=" << rho;
    EXPECT_GT(mdk, 0.0) << "rho=" << rho;
    // ...and k shared servers beat a random 1/k split of the stream.
    EXPECT_LT(mdk, md1_split) << "rho=" << rho;
    EXPECT_LT(mmk, 2.0 * md1_split) << "rho=" << rho;
  }
  // Waits grow with load.
  EXPECT_LT(QueueModel::mmk_wq(k, 0.3 * k * mu, mu),
            QueueModel::mmk_wq(k, 0.8 * k * mu, mu));
  EXPECT_LT(QueueModel::mdk_wq(k, 0.3 * k * mu, mu),
            QueueModel::mdk_wq(k, 0.8 * k * mu, mu));
}

TEST(QueueModel, GuardsReject) {
  EXPECT_THROW(QueueModel::erlang_b(2, -1.0), scale::CheckError);
  EXPECT_THROW(QueueModel::erlang_c(0, 1.0), scale::CheckError);
  EXPECT_THROW(QueueModel::mmk_wq(0, 1.0, 1.0), scale::CheckError);
  EXPECT_THROW(QueueModel::md1_wq(1.0, 0.0), scale::CheckError);
}

}  // namespace
}  // namespace scale::analysis

// Multiple MLB VMs fronting one pool (Figure 4): eNodeBs spread requests
// across them; all share ring membership; GUTI spaces are disjoint.
#include <gtest/gtest.h>

#include <set>

#include "core/cluster.h"
#include "testbed/testbed.h"
#include "workload/arrivals.h"

namespace scale {
namespace {

using testbed::Testbed;

struct MultiMlbWorld {
  Testbed tb;
  Testbed::Site* site;
  std::unique_ptr<core::ScaleCluster> cluster;

  explicit MultiMlbWorld(std::size_t mlbs) {
    site = &tb.add_site(2);
    core::ScaleCluster::Config cfg;
    cfg.initial_mlbs = mlbs;
    cfg.initial_mmps = 3;
    cluster = std::make_unique<core::ScaleCluster>(
        tb.fabric(), site->sgw->node(), tb.hss().node(), cfg);
    for (auto& enb : site->enbs) cluster->connect_enb(*enb);
  }
};

TEST(MultiMlb, BothMlbsCarryTraffic) {
  MultiMlbWorld w(2);
  w.tb.make_ues(*w.site, 120, {0.8});
  w.tb.register_all(*w.site, Duration::sec(4.0), Duration::sec(8.0));
  for (auto& mlb : w.cluster->mlbs())
    EXPECT_GT(mlb->initial_routed(), 20u)
        << "eNodeBs must spread across the MLB VMs";
}

TEST(MultiMlb, GutiSpacesAreDisjoint) {
  MultiMlbWorld w(2);
  auto ues = w.tb.make_ues(*w.site, 200, {0.8});
  w.tb.register_all(*w.site, Duration::sec(4.0), Duration::sec(8.0));
  std::set<std::uint32_t> tmsis;
  std::size_t registered = 0;
  for (epc::Ue* ue : ues) {
    if (!ue->registered()) continue;
    ++registered;
    EXPECT_TRUE(tmsis.insert(ue->guti()->m_tmsi).second)
        << "duplicate M-TMSI across MLB VMs";
  }
  EXPECT_GT(registered, 190u);
}

TEST(MultiMlb, FullProcedureSuiteAcrossFrontEnds) {
  MultiMlbWorld w(3);
  epc::Ue& ue = w.tb.make_ue(*w.site, 0, 0.9);
  ASSERT_TRUE(ue.attach());
  w.tb.run_for(Duration::sec(2.0));
  ASSERT_TRUE(ue.connected());
  ASSERT_TRUE(ue.handover(w.site->enb(1)));
  w.tb.run_for(Duration::sec(1.0));
  EXPECT_EQ(ue.completed(proto::ProcedureType::kHandover), 1u);
  w.tb.run_for(Duration::sec(7.0));
  ASSERT_TRUE(ue.service_request());
  w.tb.run_for(Duration::sec(1.0));
  EXPECT_TRUE(ue.connected());
  EXPECT_EQ(w.tb.failures(), 0u);
}

TEST(MultiMlb, RingUpdatesReachEveryFrontEnd) {
  MultiMlbWorld w(2);
  w.tb.make_ues(*w.site, 40, {0.8});
  w.tb.register_all(*w.site, Duration::sec(3.0), Duration::sec(6.0));
  w.cluster->add_mmp();
  for (auto& mlb : w.cluster->mlbs())
    EXPECT_EQ(mlb->ring().node_count(), 4u);

  // Devices remain servable through either front end after the change.
  std::size_t ok = 0;
  for (auto& ue : w.site->ues)
    if (ue->registered() && !ue->connected() && ue->service_request()) ++ok;
  w.tb.run_for(Duration::sec(3.0));
  std::size_t connected = 0;
  for (auto& ue : w.site->ues)
    if (ue->connected()) ++connected;
  EXPECT_GE(connected, ok * 9 / 10);
}

TEST(MultiMlb, LoadSharesRoughlyEvenly) {
  MultiMlbWorld w(2);
  auto ues = w.tb.make_ues(*w.site, 400, {0.8});
  w.tb.register_all(*w.site, Duration::sec(5.0), Duration::sec(8.0));
  workload::OpenLoopDriver::Config drv;
  drv.rate_per_sec = 300.0;
  workload::OpenLoopDriver driver(w.tb.engine(), ues, drv);
  driver.start(w.tb.engine().now() + Duration::sec(8.0));
  w.tb.run_for(Duration::sec(10.0));

  const double a =
      static_cast<double>(w.cluster->mlbs()[0]->initial_routed());
  const double b =
      static_cast<double>(w.cluster->mlbs()[1]->initial_routed());
  EXPECT_GT(a / (a + b), 0.35);
  EXPECT_LT(a / (a + b), 0.65);
}

}  // namespace
}  // namespace scale

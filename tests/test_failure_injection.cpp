// Failure injection: an MMP VM crashes without handing anything over. The
// paper motivates geo/replica distribution with availability; here the
// local replicas carry the devices of the dead VM.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "testbed/crash_world.h"

namespace scale {
namespace {

using epc::ContextRole;
using testbed::CrashWorld;

TEST(FailureInjection, ReplicasCarryTheDeadVmsDevices) {
  CrashWorld w(/*local_copies=*/2);
  auto ues = w.tb.make_ues(*w.site, 120, {0.9});
  w.tb.register_all(*w.site, Duration::sec(4.0), Duration::sec(10.0));

  // Devices mastered on VM0, all replicated (R=2) and idle by now.
  std::vector<epc::Ue*> victims;
  const sim::NodeId dead = w.cluster->mmp(0).node();
  for (epc::Ue* ue : ues)
    if (ue->registered() &&
        w.cluster->ring().owner(ue->guti()->key()) == dead)
      victims.push_back(ue);
  ASSERT_GT(victims.size(), 10u);

  w.cluster->crash_mmp(0);
  w.tb.run_for(Duration::sec(1.0));
  EXPECT_EQ(w.cluster->mmp_count(), 3u);
  EXPECT_FALSE(w.cluster->ring().contains(dead));

  // Their service requests must be served from the surviving replicas —
  // no re-attach, no HSS round trips.
  const std::uint64_t auths_before = w.tb.hss().auth_requests_served();
  std::size_t issued = 0;
  for (epc::Ue* ue : victims)
    if (!ue->connected() && ue->service_request()) ++issued;
  w.tb.run_for(Duration::sec(4.0));

  std::size_t connected = 0;
  for (epc::Ue* ue : victims)
    if (ue->connected()) ++connected;
  EXPECT_EQ(connected, issued);
  EXPECT_EQ(w.tb.hss().auth_requests_served(), auths_before)
      << "replica-served devices must not need re-authentication";
  EXPECT_EQ(w.tb.failures(), 0u);
}

TEST(FailureInjection, SurvivingVmPromotesReplicaToMaster) {
  CrashWorld w(2);
  epc::Ue& ue = w.tb.make_ue(*w.site, 0, 0.9);
  ue.attach();
  w.tb.run_for(Duration::sec(10.0));
  ASSERT_TRUE(ue.registered());
  const std::uint64_t key = ue.guti()->key();

  // Crash whichever VM the ring calls master for this device.
  std::size_t master_index = SIZE_MAX;
  for (std::size_t i = 0; i < w.cluster->mmp_count(); ++i)
    if (w.cluster->mmp(i).node() == w.cluster->ring().owner(key))
      master_index = i;
  ASSERT_NE(master_index, SIZE_MAX);
  w.cluster->crash_mmp(master_index);

  ASSERT_TRUE(ue.service_request());
  w.tb.run_for(Duration::sec(8.0));  // serve + fall idle (replication runs)
  EXPECT_EQ(ue.completed(proto::ProcedureType::kServiceRequest), 1u);

  // The new ring owner now holds a MASTER copy (promoted on procedure).
  const sim::NodeId new_owner = w.cluster->ring().owner(key);
  bool promoted = false;
  for (auto& mmp : w.cluster->mmps()) {
    if (mmp->node() != new_owner) continue;
    const auto* ctx = mmp->app().store().find(key);
    promoted = ctx != nullptr && ctx->role == ContextRole::kMaster;
  }
  EXPECT_TRUE(promoted);
}

TEST(FailureInjection, UnreplicatedDevicesRecoverByReattach) {
  CrashWorld w(/*local_copies=*/1);  // no replicas: crash loses state
  auto ues = w.tb.make_ues(*w.site, 60, {0.9});
  w.tb.register_all(*w.site, Duration::sec(3.0), Duration::sec(10.0));

  const sim::NodeId dead = w.cluster->mmp(0).node();
  std::vector<epc::Ue*> victims;
  for (epc::Ue* ue : ues)
    if (ue->registered() &&
        w.cluster->ring().owner(ue->guti()->key()) == dead)
      victims.push_back(ue);
  ASSERT_GT(victims.size(), 5u);

  w.cluster->crash_mmp(0);
  std::size_t issued = 0;
  for (epc::Ue* ue : victims)
    if (!ue->connected() && ue->service_request()) ++issued;
  // Rejects → failure sink → automatic re-attach (testbed behaviour).
  w.tb.run_for(Duration::sec(15.0));

  std::size_t registered = 0;
  for (epc::Ue* ue : victims)
    if (ue->registered()) ++registered;
  EXPECT_EQ(registered, victims.size());
  EXPECT_GE(w.tb.failures(), issued * 8 / 10)
      << "without replicas the crash must surface as device failures";
}

TEST(FailureInjection, InFlightMessagesToDeadVmAreDropped) {
  CrashWorld w(2);
  w.tb.make_ues(*w.site, 40, {0.9});
  w.tb.register_all(*w.site, Duration::sec(3.0), Duration::sec(8.0));
  const auto dropped_before = w.tb.fabric().dropped();
  // Crash while requests are in flight.
  std::size_t fired = 0;
  for (auto& ue : w.site->ues)
    if (!ue->connected() && ue->service_request()) ++fired;
  ASSERT_GT(fired, 10u);
  // Let the requests reach the MLB and get forwarded (radio 1 ms + fabric
  // 0.5 ms), then crash while the forwards are on the wire to the VMs.
  w.tb.run_for(Duration::ms(1.7));
  w.cluster->crash_mmp(0);
  w.tb.run_for(Duration::sec(10.0));
  EXPECT_GT(w.tb.fabric().dropped(), dropped_before);
}

}  // namespace
}  // namespace scale

// Workload scenario helpers: skewed splits and diurnal profiles.
#include <gtest/gtest.h>

#include "mme/pool.h"
#include "testbed/testbed.h"
#include "workload/scenarios.h"

namespace scale::workload {
namespace {

using testbed::Testbed;

struct World {
  Testbed tb;
  Testbed::Site* site;
  std::unique_ptr<mme::MmePool> pool;

  World() {
    site = &tb.add_site(1);
    mme::MmePool::Config cfg;
    cfg.node_template.sgw = site->sgw->node();
    cfg.node_template.hss = tb.hss().node();
    cfg.initial_count = 1;
    pool = std::make_unique<mme::MmePool>(tb.fabric(), cfg);
    pool->connect_enb(site->enb(0));
  }
};

TEST(Scenarios, SkewedSplitConservesTotalRate) {
  World w;
  w.tb.make_ues(*w.site, 100, {0.5});
  const auto devices = w.site->ue_ptrs();
  std::size_t idx = 0;
  const auto split = make_skewed_split(
      devices, 1000.0, 4.0, [&idx](const epc::Ue&) { return idx++ < 25; });

  EXPECT_EQ(split.hot.size(), 25u);
  EXPECT_EQ(split.cold.size(), 75u);
  EXPECT_NEAR(split.hot_rate_per_sec + split.cold_rate_per_sec, 1000.0,
              1e-9);
  // A hot device's share is exactly 4x a cold one's.
  const double hot_per = split.hot_rate_per_sec / 25.0;
  const double cold_per = split.cold_rate_per_sec / 75.0;
  EXPECT_NEAR(hot_per / cold_per, 4.0, 1e-9);
}

TEST(Scenarios, SkewBoostOneIsUniform) {
  World w;
  w.tb.make_ues(*w.site, 40, {0.5});
  std::size_t idx = 0;
  const auto split = make_skewed_split(
      w.site->ue_ptrs(), 400.0, 1.0,
      [&idx](const epc::Ue&) { return idx++ % 2 == 0; });
  EXPECT_NEAR(split.hot_rate_per_sec, split.cold_rate_per_sec, 1e-9);
}

TEST(Scenarios, SkewAllHotDegenerates) {
  World w;
  w.tb.make_ues(*w.site, 10, {0.5});
  const auto split = make_skewed_split(w.site->ue_ptrs(), 100.0, 6.0,
                                       [](const epc::Ue&) { return true; });
  EXPECT_EQ(split.cold.size(), 0u);
  EXPECT_NEAR(split.hot_rate_per_sec, 100.0, 1e-9);
  EXPECT_NEAR(split.cold_rate_per_sec, 0.0, 1e-9);
}

TEST(Scenarios, SkewLevelsAreIncreasing) {
  const auto& levels = skew_levels();
  ASSERT_EQ(levels.size(), 4u);
  for (std::size_t i = 1; i < levels.size(); ++i)
    EXPECT_GT(levels[i], levels[i - 1]);
}

TEST(Scenarios, DiurnalProfileShape) {
  const DiurnalProfile p(100.0, 900.0, Duration::sec(360.0));
  EXPECT_NEAR(p.rate_at(Duration::zero()), 100.0, 1e-6);          // trough
  EXPECT_NEAR(p.rate_at(Duration::sec(180.0)), 900.0, 1e-6);      // peak
  EXPECT_NEAR(p.rate_at(Duration::sec(360.0)), 100.0, 1e-6);      // period
  EXPECT_NEAR(p.rate_at(Duration::sec(90.0)), 500.0, 1e-6);       // midpoint
  // Always within [low, high].
  for (int s = 0; s < 720; s += 7) {
    const double r = p.rate_at(Duration::sec(static_cast<double>(s)));
    EXPECT_GE(r, 100.0 - 1e-9);
    EXPECT_LE(r, 900.0 + 1e-9);
  }
}

}  // namespace
}  // namespace scale::workload

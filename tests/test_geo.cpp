// Geo-multiplexing (§4.5.2): budgets and gossip, remote-DC choice, external
// replication, overload offload across DCs, and GeoReject self-healing.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "testbed/testbed.h"
#include "workload/arrivals.h"

namespace scale {
namespace {

using epc::ContextRole;
using testbed::Testbed;

// Two DCs, each with its own site (S-GW + eNB) and ScaleCluster, linked by
// a configurable inter-DC propagation delay.
struct GeoWorld {
  Testbed tb;
  std::vector<Testbed::Site*> sites;
  std::vector<std::unique_ptr<core::ScaleCluster>> clusters;

  explicit GeoWorld(std::size_t dcs = 2,
                    Duration inter_dc = Duration::ms(20.0),
                    double budget_fraction = 0.1) {
    for (std::uint32_t dc = 0; dc < dcs; ++dc) {
      sites.push_back(&tb.add_site(1, static_cast<proto::Tac>(dc + 1),
                                   Duration::ms(1.0), dc));
      core::ScaleCluster::Config cfg;
      cfg.home_dc = dc;
      cfg.mme_group = static_cast<std::uint16_t>(100 + dc);  // disjoint GUTI spaces
      cfg.initial_mmps = 2;
      cfg.first_vm_code = static_cast<std::uint8_t>(1 + dc * 100);
      cfg.geo.budget_fraction = budget_fraction;
      cfg.geo.gossip_interval = Duration::ms(200.0);
      cfg.provisioner.devices_per_vm = 100;  // small Sm in device units
      clusters.push_back(std::make_unique<core::ScaleCluster>(
          tb.fabric(), sites[dc]->sgw->node(), tb.hss().node(), cfg));
      clusters[dc]->connect_enb(*sites[dc]->enbs[0]);
      tb.assign_dc(clusters[dc]->mlb().node(), dc);
      for (auto& mmp : clusters[dc]->mmps())
        tb.assign_dc(mmp->node(), dc);
    }
    for (std::uint32_t a = 0; a < dcs; ++a) {
      for (std::uint32_t b = 0; b < dcs; ++b) {
        if (a == b) continue;
        tb.network().set_dc_latency(a, b, inter_dc);
        clusters[a]->geo().add_peer(b, clusters[b]->mlb().node(), inter_dc);
      }
    }
    for (auto& c : clusters) c->start();
  }
};

TEST(Geo, GossipPropagatesAvailableBudget) {
  GeoWorld w;
  w.clusters[1]->geo().set_budget(42.0);
  w.tb.run_for(Duration::sec(2.0));
  // DC0 learned DC1's Ŝ via gossip.
  bool known = false;
  for (const auto& p : w.clusters[0]->geo().peers())
    if (p.dc_id == 1 && p.known_available > 40.0) known = true;
  EXPECT_TRUE(known);
  EXPECT_GT(w.clusters[1]->geo().gossips_sent(), 2u);
}

TEST(Geo, BudgetAccounting) {
  Testbed tb;
  auto& site = tb.add_site(1);
  core::GeoManager geo(tb.fabric(), /*local_mlb=*/1,
                       core::GeoManager::Config{});
  (void)site;
  geo.set_budget(2.0);
  EXPECT_TRUE(geo.accept_external());
  EXPECT_TRUE(geo.accept_external());
  EXPECT_FALSE(geo.accept_external());  // full
  EXPECT_DOUBLE_EQ(geo.available(), 0.0);
  geo.release_external();
  EXPECT_TRUE(geo.accept_external());
}

TEST(Geo, ChooseRemoteFavorsNearbyDcs) {
  Testbed tb;
  core::GeoManager geo(tb.fabric(), 1, core::GeoManager::Config{});
  geo.add_peer(1, 10, Duration::ms(5.0));
  geo.add_peer(2, 20, Duration::ms(50.0));
  // Both advertise budget.
  geo.on_gossip(proto::GeoBudgetGossip{1, 100.0});
  geo.on_gossip(proto::GeoBudgetGossip{2, 100.0});

  Rng rng(1);
  int near = 0, far = 0;
  for (int i = 0; i < 20000; ++i) {
    const auto pick = geo.choose_remote(rng);
    ASSERT_TRUE(pick.has_value());
    (pick->dc_id == 1 ? near : far)++;
  }
  // p ∝ 1/D: 10:1 ratio expected — but both are picked (no hot-spotting).
  EXPECT_NEAR(static_cast<double>(near) / (near + far), 10.0 / 11.0, 0.02);
  EXPECT_GT(far, 0);
}

TEST(Geo, ChooseRemoteSkipsExhaustedDcs) {
  Testbed tb;
  core::GeoManager geo(tb.fabric(), 1, core::GeoManager::Config{});
  geo.add_peer(1, 10, Duration::ms(5.0));
  geo.add_peer(2, 20, Duration::ms(50.0));
  geo.on_gossip(proto::GeoBudgetGossip{1, 0.0});  // DC1 full
  geo.on_gossip(proto::GeoBudgetGossip{2, 10.0});
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const auto pick = geo.choose_remote(rng);
    ASSERT_TRUE(pick.has_value());
    EXPECT_EQ(pick->dc_id, 2u);
  }
  geo.on_gossip(proto::GeoBudgetGossip{2, 0.0});
  EXPECT_FALSE(geo.choose_remote(rng).has_value());
}

TEST(Geo, EpochPushesExternalReplicasOfHotDevices) {
  GeoWorld w;
  auto ues = w.tb.make_ues(*w.sites[0], 40, {0.9});
  w.tb.register_all(*w.sites[0], Duration::sec(3.0), Duration::sec(8.0));
  // Seed high access probability (profiling database) and run an epoch.
  w.clusters[0]->for_each_master(
      [](mme::UeContext& ctx) { ctx.rec.access_freq = 0.9; });
  w.tb.run_for(Duration::sec(1.0));  // gossip Ŝ around first
  const auto report = w.clusters[0]->run_epoch();
  w.tb.run_for(Duration::sec(2.0));  // let pushes land

  EXPECT_GT(report.geo_pushes, 0u);
  // DC1 holds External contexts now.
  std::size_t external = 0;
  for (auto& mmp : w.clusters[1]->mmps())
    external += mmp->app().store().count(ContextRole::kExternal);
  EXPECT_GT(external, 0u);
  EXPECT_GT(w.clusters[1]->geo().used(), 0.0);
  (void)ues;
}

TEST(Geo, OverloadedMmpOffloadsToRemoteDcAndRequestCompletes) {
  GeoWorld w;
  auto ues = w.tb.make_ues(*w.sites[0], 40, {0.9});
  w.tb.register_all(*w.sites[0], Duration::sec(3.0), Duration::sec(8.0));
  w.clusters[0]->for_each_master(
      [](mme::UeContext& ctx) { ctx.rec.access_freq = 0.9; });
  w.tb.run_for(Duration::sec(1.0));
  w.clusters[0]->run_epoch();
  w.tb.run_for(Duration::sec(2.0));

  // Saturate every DC0 MMP beyond the offload threshold.
  for (auto& mmp : w.clusters[0]->mmps())
    mmp->cpu().consume(Duration::sec(20.0));
  w.tb.run_for(Duration::sec(1.0));  // load reports / trackers update

  // Fire service requests; externally replicated ones should be served
  // remotely rather than queueing behind 20 s of local backlog.
  w.tb.delays().clear();
  std::size_t issued = 0;
  for (epc::Ue* ue : ues)
    if (ue->registered() && !ue->connected() && ue->service_request())
      ++issued;
  w.tb.run_for(Duration::sec(8.0));

  std::uint64_t offloads = 0, served_remote = 0;
  for (auto& mmp : w.clusters[0]->mmps()) offloads += mmp->geo_offloads();
  for (auto& mmp : w.clusters[1]->mmps()) served_remote += mmp->geo_served();
  EXPECT_GT(offloads, 0u);
  EXPECT_GT(served_remote, 0u);
  // Remotely served requests finish in ~inter-DC RTT time, far below the
  // local 20 s backlog.
  ASSERT_TRUE(w.tb.delays().has("service_request"));
  EXPECT_LT(w.tb.delays().bucket("service_request").percentile(0.5), 2000.0);
  (void)issued;
}

TEST(Geo, MissingExternalReplicaBouncesHomeViaGeoReject) {
  GeoWorld w;
  auto ues = w.tb.make_ues(*w.sites[0], 10, {0.9});
  w.tb.register_all(*w.sites[0], Duration::sec(2.0), Duration::sec(8.0));

  // Claim external replication WITHOUT actually pushing state: mark every
  // local copy (master and replica) as externally replicated at DC1.
  for (auto& mmp : w.clusters[0]->mmps())
    mmp->app().store().for_each(
        [](mme::UeContext& ctx) { ctx.rec.external_dc = 1; });
  for (auto& mmp : w.clusters[0]->mmps())
    mmp->cpu().consume(Duration::sec(10.0));
  w.tb.run_for(Duration::sec(1.0));

  std::size_t issued = 0;
  for (epc::Ue* ue : ues)
    if (ue->registered() && !ue->connected() && ue->service_request())
      ++issued;
  w.tb.run_for(Duration::sec(20.0));

  std::uint64_t rejects = 0;
  for (auto& mmp : w.clusters[1]->mmps()) rejects += mmp->geo_rejects();
  EXPECT_GT(rejects, 0u);
  // Despite the bounce, every request is eventually served at home (the
  // devices may have cycled back to Idle by now — count completions).
  ASSERT_TRUE(w.tb.delays().has("service_request"));
  EXPECT_GE(w.tb.delays().bucket("service_request").count() + w.tb.failures(),
            issued);
  // And the bounced contexts self-healed: the stale external marker is
  // gone wherever the request was re-processed.
  std::size_t healed = 0;
  for (auto& mmp : w.clusters[0]->mmps())
    mmp->app().store().for_each([&](mme::UeContext& ctx) {
      if (ctx.rec.external_dc < 0) ++healed;
    });
  EXPECT_GT(healed, 0u);
}

TEST(Geo, PerVmQuotaConservesBudget) {
  Testbed tb;
  core::GeoManager geo(tb.fabric(), 1, core::GeoManager::Config{});
  geo.set_budget(10.0);
  EXPECT_EQ(geo.per_vm_external_quota(4), 3u);  // ceil(10/4)
  EXPECT_EQ(geo.per_vm_external_quota(0), 0u);
}

}  // namespace
}  // namespace scale

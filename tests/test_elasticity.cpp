// Elastic provisioning: VM addition/removal with ring migration, and the
// epoch loop (load estimation, β, resize).
#include <gtest/gtest.h>

#include "common/check.h"

#include "core/cluster.h"
#include "testbed/testbed.h"
#include "workload/arrivals.h"

namespace scale {
namespace {

using epc::ContextRole;
using testbed::Testbed;

struct ElasticWorld {
  Testbed tb;
  Testbed::Site* site;
  std::unique_ptr<core::ScaleCluster> cluster;

  explicit ElasticWorld(core::ScaleCluster::Config cfg = {},
                        std::size_t mmps = 2) {
    site = &tb.add_site(1);
    cfg.initial_mmps = mmps;
    cluster = std::make_unique<core::ScaleCluster>(
        tb.fabric(), site->sgw->node(), tb.hss().node(), cfg);
    cluster->connect_enb(site->enb(0));
  }

  // Verify: for every registered device key, the VM the ring names as
  // master actually holds a master copy.
  void expect_ring_consistent(const std::vector<epc::Ue*>& ues) {
    for (epc::Ue* ue : ues) {
      if (!ue->registered()) continue;
      const std::uint64_t key = ue->guti()->key();
      const auto owner = cluster->ring().owner(key);
      bool ok = false;
      for (auto& mmp : cluster->mmps()) {
        if (mmp->node() != owner) continue;
        const auto* ctx = mmp->app().store().find(key);
        ok = ctx != nullptr && ctx->role == ContextRole::kMaster;
      }
      EXPECT_TRUE(ok) << "ring owner lacks master for device "
                      << ue->imsi();
    }
  }
};

TEST(Elasticity, AddMmpMigratesOnlyAffectedMasters) {
  ElasticWorld w;
  auto ues = w.tb.make_ues(*w.site, 120, {0.9});
  w.tb.register_all(*w.site, Duration::sec(4.0), Duration::sec(8.0));

  // Record who owns what before scale-out.
  std::map<std::uint64_t, sim::NodeId> owner_before;
  for (epc::Ue* ue : ues)
    if (ue->registered())
      owner_before[ue->guti()->key()] =
          w.cluster->ring().owner(ue->guti()->key());

  w.cluster->add_mmp();
  w.tb.run_for(Duration::sec(3.0));  // let transfers land

  const sim::NodeId fresh = w.cluster->mmps().back()->node();
  std::size_t moved = 0;
  for (const auto& [key, old_owner] : owner_before) {
    const auto now_owner = w.cluster->ring().owner(key);
    if (now_owner != old_owner) {
      EXPECT_EQ(now_owner, fresh) << "keys may only move to the new VM";
      ++moved;
    }
  }
  EXPECT_GT(moved, 0u);
  EXPECT_LT(moved, owner_before.size());  // incremental, not wholesale
  w.expect_ring_consistent(ues);
  // The new VM immediately serves its share: it received masters.
  EXPECT_GT(w.cluster->mmps().back()->app().store().count(
                ContextRole::kMaster), 0u);
}

TEST(Elasticity, DevicesRemainServableAfterScaleOut) {
  ElasticWorld w;
  auto ues = w.tb.make_ues(*w.site, 80, {0.9});
  w.tb.register_all(*w.site, Duration::sec(4.0), Duration::sec(8.0));
  w.cluster->add_mmp();
  w.cluster->add_mmp();
  w.tb.run_for(Duration::sec(3.0));

  std::size_t issued = 0;
  for (epc::Ue* ue : ues)
    if (ue->registered() && !ue->connected() && ue->service_request())
      ++issued;
  w.tb.run_for(Duration::sec(4.0));
  std::size_t served = 0;
  for (epc::Ue* ue : ues)
    if (ue->connected()) ++served;
  EXPECT_GT(issued, 50u);
  EXPECT_GE(served, issued * 9 / 10);
}

TEST(Elasticity, RemoveMmpHandsMastersToNewOwners) {
  ElasticWorld w({}, 4);
  auto ues = w.tb.make_ues(*w.site, 100, {0.9});
  w.tb.register_all(*w.site, Duration::sec(4.0), Duration::sec(8.0));

  const std::uint64_t before = w.cluster->registered_devices();
  w.cluster->remove_last_mmp();
  w.tb.run_for(Duration::sec(3.0));

  EXPECT_EQ(w.cluster->mmp_count(), 3u);
  // No devices lost: every master re-homed.
  EXPECT_EQ(w.cluster->registered_devices(), before);
  w.expect_ring_consistent(ues);
}

TEST(Elasticity, CannotRemoveLastMmp) {
  ElasticWorld w({}, 1);
  EXPECT_THROW(w.cluster->remove_last_mmp(), CheckError);
}

TEST(Elasticity, EpochProvisionsForLoad) {
  core::ScaleCluster::Config cfg;
  cfg.provisioner.requests_per_vm_epoch = 200;
  cfg.provisioner.alpha = 1.0;  // track the latest epoch exactly
  // Short Active window so 150 devices can sustain 60 req/s.
  cfg.vm_template.app.profile.inactivity_timeout = Duration::sec(1.0);
  ElasticWorld w(cfg, 1);
  auto ues = w.tb.make_ues(*w.site, 150, {0.9});
  w.tb.register_all(*w.site, Duration::sec(4.0), Duration::sec(8.0));

  // Drive ~600 requests in one epoch: V_C = ceil(600/200) = 3.
  workload::OpenLoopDriver::Config drv;
  drv.rate_per_sec = 60.0;
  workload::OpenLoopDriver driver(w.tb.engine(), ues, drv);
  w.cluster->run_epoch();  // snapshot baseline
  driver.start(w.tb.engine().now() + Duration::sec(10.0));
  w.tb.run_for(Duration::sec(11.0));

  const auto report = w.cluster->run_epoch();
  EXPECT_GT(report.measured_load, 400u);
  EXPECT_GE(report.decision.vms, 3u);
  EXPECT_EQ(w.cluster->mmp_count(), report.decision.vms);
}

TEST(Elasticity, EpochShrinksWhenLoadSubsides) {
  core::ScaleCluster::Config cfg;
  cfg.provisioner.requests_per_vm_epoch = 100;
  cfg.provisioner.alpha = 1.0;
  ElasticWorld w(cfg, 5);
  w.tb.make_ues(*w.site, 30, {0.9});
  w.tb.register_all(*w.site, Duration::sec(3.0), Duration::sec(6.0));

  // Nearly idle epoch: provisioning collapses to the storage/min bound.
  w.cluster->run_epoch();
  w.tb.run_for(Duration::sec(5.0));
  const auto report = w.cluster->run_epoch();
  EXPECT_LT(report.decision.vms, 5u);
  EXPECT_EQ(w.cluster->mmp_count(), report.decision.vms);
  w.tb.run_for(Duration::sec(2.0));
}

// An epoch whose own provisioning decision resizes the cluster must repair
// replica placement in the SAME epoch (resize runs before the resync check),
// not one epoch later — a window in which a second fault could lose state.
TEST(Elasticity, EpochThatResizesResyncsImmediately) {
  core::ScaleCluster::Config cfg;
  cfg.provisioner.alpha = 1.0;
  cfg.provisioner.requests_per_vm_epoch = 1000;
  cfg.provisioner.devices_per_vm = 30;  // V_S forces growth: 2·90/30 = 6
  ElasticWorld w(cfg, 2);
  w.tb.make_ues(*w.site, 90, {0.9});
  w.tb.register_all(*w.site, Duration::sec(3.0), Duration::sec(6.0));

  const auto report = w.cluster->run_epoch();
  EXPECT_GT(w.cluster->mmp_count(), 2u);
  EXPECT_GT(report.resyncs, 0u) << "growth epoch must resync in-epoch";
  w.tb.run_for(Duration::sec(1.0));
  EXPECT_EQ(w.cluster->run_epoch().resyncs, 0u) << "repair must not repeat";
}

// Replica resync is a repair action, not a steady-state tax: an epoch with
// no membership change since the last one must push zero resync copies
// (full re-pushes every epoch would tax already-loaded VMs for nothing),
// while the first epoch after a crash must re-push every master so the
// copies destroyed with the dead VM are restored.
TEST(Elasticity, ResyncRunsOnlyAfterMembershipChurn) {
  core::ScaleCluster::Config cfg;
  cfg.provisioner.min_vms = 3;
  cfg.provisioner.max_vms = 3;  // pin the size: no epoch-driven resizes
  ElasticWorld w(cfg, 3);
  auto ues = w.tb.make_ues(*w.site, 90, {0.9});
  w.tb.register_all(*w.site, Duration::sec(3.0), Duration::sec(6.0));

  // Steady state: consecutive epochs must not re-push replicas.
  EXPECT_EQ(w.cluster->run_epoch().resyncs, 0u);
  w.tb.run_for(Duration::sec(1.0));
  EXPECT_EQ(w.cluster->run_epoch().resyncs, 0u);

  // Crash one VM: the next epoch resyncs every surviving master exactly
  // once, and the epoch after that is quiet again.
  w.cluster->crash_mmp(1);
  w.tb.run_for(Duration::sec(1.0));
  const auto repair = w.cluster->run_epoch();
  EXPECT_GT(repair.resyncs, 0u);
  std::size_t masters = 0;
  for (auto& mmp : w.cluster->mmps())
    masters += mmp->app().store().count(epc::ContextRole::kMaster);
  EXPECT_EQ(repair.resyncs, masters);
  w.tb.run_for(Duration::sec(1.0));
  EXPECT_EQ(w.cluster->run_epoch().resyncs, 0u);

  // The repair actually restored redundancy for every device whose master
  // survived the crash (its replica may have died with the victim): ≥2
  // local copies again. Devices whose *master* died stay at one copy until
  // their next request promotes the replica — the lazy-promotion path
  // covered by the churn test, not resync's job.
  w.tb.run_for(Duration::sec(1.0));
  for (epc::Ue* ue : ues) {
    if (!ue->registered()) continue;
    const std::uint64_t key = ue->guti()->key();
    bool master_alive = false;
    std::size_t copies = 0;
    for (auto& mmp : w.cluster->mmps()) {
      const auto* ctx = mmp->app().store().find(key);
      if (ctx == nullptr) continue;
      ++copies;
      if (ctx->role == epc::ContextRole::kMaster) master_alive = true;
    }
    if (master_alive)
      EXPECT_GE(copies, 2u) << "device " << ue->imsi()
                            << " left under-replicated after repair epoch";
  }
}

TEST(Elasticity, AccessFrequencyTracksActivity) {
  core::ScaleCluster::Config cfg;
  cfg.wi_alpha = 0.5;
  ElasticWorld w(cfg, 2);
  epc::Ue& active = w.tb.make_ue(*w.site, 0, 0.9);
  epc::Ue& dormant = w.tb.make_ue(*w.site, 0, 0.1);
  active.attach();
  dormant.attach();
  w.tb.run_for(Duration::sec(10.0));
  w.cluster->run_epoch();  // both were active this epoch

  // Next epochs: only `active` keeps requesting.
  for (int e = 0; e < 3; ++e) {
    if (!active.connected()) active.service_request();
    w.tb.run_for(Duration::sec(10.0));
    w.cluster->run_epoch();
  }
  double w_active = 0.0, w_dormant = 0.0;
  w.cluster->for_each_master([&](mme::UeContext& ctx) {
    if (ctx.rec.imsi == active.imsi()) w_active = ctx.rec.access_freq;
    if (ctx.rec.imsi == dormant.imsi()) w_dormant = ctx.rec.access_freq;
  });
  EXPECT_GT(w_active, 0.7);
  EXPECT_LT(w_dormant, 0.3);
}

TEST(Elasticity, BetaReducesVmsForLowAccessPopulations) {
  // S3's mechanism: many low-wᵢ devices → smaller β → fewer VMs, at equal K.
  core::ScaleCluster::Config cfg;
  cfg.provisioner.devices_per_vm = 20;  // make storage the binding term
  cfg.policy.low_access_threshold = 0.2;
  ElasticWorld w(cfg, 2);
  auto ues = w.tb.make_ues(*w.site, 100, {0.9});
  w.tb.register_all(*w.site, Duration::sec(4.0), Duration::sec(8.0));

  // Epoch 1: everyone just attached → all look active; β = 1.
  const auto r1 = w.cluster->run_epoch();
  EXPECT_NEAR(r1.beta, 1.0, 0.05);

  // Let most devices go dormant over several epochs so wᵢ decays below x.
  for (int e = 0; e < 6; ++e) {
    w.tb.run_for(Duration::sec(5.0));
    w.cluster->run_epoch();
  }
  const auto r2 = w.cluster->last_epoch();
  EXPECT_LT(r2.beta, 0.8);
  EXPECT_LT(r2.decision.storage_vms, r1.decision.storage_vms);
  (void)ues;
}

}  // namespace
}  // namespace scale

// ClusterVm plumbing shared by SIMPLE VMs, dMME nodes and SCALE MMPs:
// load reporting, reply tunneling, replica application, retirement.
#include <gtest/gtest.h>

#include "core/cluster.h"
#include "testbed/testbed.h"

namespace scale {
namespace {

using testbed::Testbed;

struct World {
  Testbed tb;
  Testbed::Site* site;
  std::unique_ptr<core::ScaleCluster> cluster;

  World() {
    site = &tb.add_site(1);
    core::ScaleCluster::Config cfg;
    cfg.initial_mmps = 2;
    cluster = std::make_unique<core::ScaleCluster>(
        tb.fabric(), site->sgw->node(), tb.hss().node(), cfg);
    cluster->connect_enb(site->enb(0));
  }
};

TEST(ClusterVm, LoadReportsReachTheMlb) {
  World w;
  // Pin a known CPU backlog on MMP1 and let reports flow.
  w.cluster->mmp(0).cpu().consume(Duration::sec(2.0));
  w.tb.run_for(Duration::sec(1.0));
  // The MLB's view of MMP1 must exceed its view of (idle) MMP2 — the
  // load score includes queued seconds, so it can exceed 1.0.
  const double load1 = w.cluster->mlb().load_of(w.cluster->mmp(0).node());
  const double load2 = w.cluster->mlb().load_of(w.cluster->mmp(1).node());
  EXPECT_GT(load1, load2);
  EXPECT_GT(load1, 1.0);
}

TEST(ClusterVm, StaleReplicaPushIsIgnored) {
  World w;
  epc::Ue& ue = w.tb.make_ue(*w.site, 0, 0.9);
  ue.attach();
  w.tb.run_for(Duration::sec(10.0));
  ASSERT_TRUE(ue.registered());

  const std::uint64_t key = ue.guti()->key();
  core::MmpNode* holder = nullptr;
  for (auto& mmp : w.cluster->mmps())
    if (mmp->app().store().contains(key)) holder = mmp.get();
  ASSERT_NE(holder, nullptr);
  auto* ctx = holder->app().store().find(key);
  const std::uint32_t live_version = ctx->rec.version;
  ASSERT_GT(live_version, 0u);

  // Craft an outdated push (version 0) and deliver it directly.
  proto::ReplicaPush stale;
  stale.rec = ctx->rec;
  stale.rec.version = 0;
  stale.rec.tac = 4242;  // poison marker
  w.tb.fabric().send(w.cluster->mlb().node(), holder->node(),
                     proto::pdu_of(proto::ClusterMessage{stale}));
  w.tb.run_for(Duration::sec(1.0));

  EXPECT_EQ(holder->app().store().find(key)->rec.version, live_version);
  EXPECT_NE(holder->app().store().find(key)->rec.tac, 4242);
}

TEST(ClusterVm, ReplicaDeleteRemovesCopy) {
  World w;
  epc::Ue& ue = w.tb.make_ue(*w.site, 0, 0.9);
  ue.attach();
  w.tb.run_for(Duration::sec(10.0));
  const std::uint64_t key = ue.guti()->key();

  std::size_t copies = 0;
  for (auto& mmp : w.cluster->mmps())
    if (mmp->app().store().contains(key)) ++copies;
  ASSERT_EQ(copies, 2u);  // master + replica

  proto::ReplicaDelete del;
  del.guti = *ue.guti();
  for (auto& mmp : w.cluster->mmps())
    w.tb.fabric().send(w.cluster->mlb().node(), mmp->node(),
                       proto::pdu_of(proto::ClusterMessage{del}));
  w.tb.run_for(Duration::sec(1.0));
  for (auto& mmp : w.cluster->mmps())
    EXPECT_FALSE(mmp->app().store().contains(key));
}

TEST(ClusterVm, DetachCleansReplicaEverywhere) {
  World w;
  epc::Ue& ue = w.tb.make_ue(*w.site, 0, 0.9);
  ue.attach();
  w.tb.run_for(Duration::sec(10.0));
  const std::uint64_t key = ue.guti()->key();
  ASSERT_TRUE(ue.registered());

  ASSERT_TRUE(ue.detach());
  w.tb.run_for(Duration::sec(2.0));
  EXPECT_FALSE(ue.registered());
  for (auto& mmp : w.cluster->mmps())
    EXPECT_FALSE(mmp->app().store().contains(key))
        << "replica copies must not outlive the subscription";
}

TEST(ClusterVm, RequestCountersTrackProcedures) {
  World w;
  epc::Ue& ue = w.tb.make_ue(*w.site, 0, 0.9);
  ue.attach();
  w.tb.run_for(Duration::sec(8.0));
  ue.service_request();
  w.tb.run_for(Duration::sec(2.0));
  std::uint64_t handled = 0, pushed = 0;
  for (auto& mmp : w.cluster->mmps()) {
    handled += mmp->requests_handled();
    pushed += mmp->replicas_pushed();
  }
  EXPECT_EQ(handled, 2u);  // attach + service request
  EXPECT_GE(pushed, 2u);   // each completion replicated (plus idle sync)
}

}  // namespace
}  // namespace scale
